// Tests of the util layer: Status/Result error handling, RNG, timing,
// and table printing.
#include <gtest/gtest.h>

#include <sstream>

#include "util/result.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace ongoingdb {
namespace {

TEST(StatusTest, OkState) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
  EXPECT_EQ(Status::OK(), st);
}

TEST(StatusTest, ErrorStatesCarryCodeAndMessage) {
  Status st = Status::InvalidArgument("bad input");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad input");
  EXPECT_EQ(st.ToString(), "Invalid argument: bad input");
  std::ostringstream os;
  os << st;
  EXPECT_EQ(os.str(), "Invalid argument: bad input");
}

TEST(StatusTest, AllFactoryCodes) {
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::NotImplemented("x").code(), StatusCode::kNotImplemented);
  EXPECT_EQ(Status::TypeError("x").code(), StatusCode::kTypeError);
  EXPECT_EQ(Status::SchemaMismatch("x").code(), StatusCode::kSchemaMismatch);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

Status FailsHalfway(bool fail) {
  ONGOINGDB_RETURN_NOT_OK(fail ? Status::IOError("boom") : Status::OK());
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacro) {
  EXPECT_TRUE(FailsHalfway(false).ok());
  EXPECT_EQ(FailsHalfway(true).code(), StatusCode::kIOError);
}

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v;
}

Result<int> DoublePositive(int v) {
  ONGOINGDB_ASSIGN_OR_RETURN(int parsed, ParsePositive(v));
  return parsed * 2;
}

TEST(ResultTest, ValueAndErrorStates) {
  Result<int> ok = ParsePositive(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 21);
  EXPECT_TRUE(ok.status().ok());
  Result<int> err = ParsePositive(-1);
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto doubled = DoublePositive(21);
  ASSERT_TRUE(doubled.ok());
  EXPECT_EQ(*doubled, 42);
  EXPECT_FALSE(DoublePositive(0).ok());
}

TEST(ResultTest, MoveOnlyValues) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 5);
}

TEST(RngTest, DeterministicUnderSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Uniform(0, 1000), b.Uniform(0, 1000));
  }
}

TEST(RngTest, UniformBounds) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Uniform(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    double d = rng.UniformReal();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, SkewedTowardsHighConcentratesMassLate) {
  Rng rng(13);
  int late = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    if (rng.SkewedTowardsHigh(0, 100, 3.0) >= 50) ++late;
  }
  // With skew 3 well over half the mass is in the upper half.
  EXPECT_GT(late, n * 6 / 10);
}

TEST(RngTest, StringLengthAndAlphabet) {
  Rng rng(17);
  std::string s = rng.String(64);
  EXPECT_EQ(s.size(), 64u);
  for (char c : s) {
    EXPECT_GE(c, 'a');
    EXPECT_LE(c, 'z');
  }
}

TEST(TimerTest, MeasuresElapsedTime) {
  Timer t;
  volatile int64_t sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GE(t.ElapsedSeconds(), 0.0);
  EXPECT_GE(t.ElapsedMillis(), 0.0);
  t.Reset();
  EXPECT_LT(t.ElapsedSeconds(), 1.0);
}

TEST(TimerTest, MedianSecondsUsesMiddleValue) {
  int calls = 0;
  double median = MedianSeconds([&calls] { ++calls; }, 5);
  EXPECT_EQ(calls, 5);
  EXPECT_GE(median, 0.0);
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter printer;
  printer.SetHeader({"a", "long header"});
  printer.AddRow({"value", "x"});
  std::ostringstream os;
  printer.Print(os);
  std::string out = os.str();
  EXPECT_NE(out.find("a      long header"), std::string::npos);
  EXPECT_NE(out.find("value  x"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(TablePrinterTest, FormatDoublePrecision) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
}

}  // namespace
}  // namespace ongoingdb
