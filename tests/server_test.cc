// Unit tests of the serving layer (server/catalog.h, server/session.h):
// the thread-safe catalog's commit/publish protocol, snapshot pinning
// and stability, ring-based time travel with the locked MaterializeAsOf
// fallback, the read-only snapshot views, session statement execution
// with per-session knobs, and the SessionManager.
//
// The *concurrent* equivalence guarantees are covered by
// concurrent_serving_test.cc; this suite pins down the single-threaded
// semantics those tests build on.
#include "server/session.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "relation/modifications.h"
#include "server/catalog.h"
#include "sql/parser.h"
#include "sql/statement.h"
#include "testing/plan_fuzz.h"

namespace ongoingdb {
namespace server {
namespace {

using plan_fuzz::Fingerprint;

Schema BugsSchema() {
  return Schema({{"BID", ValueType::kInt64},
                 {"C", ValueType::kString},
                 {"VT", ValueType::kOngoingInterval}});
}

std::vector<Value> BugRow(int64_t bid, const std::string& component,
                          TimePoint since) {
  return {Value::Int64(bid), Value::String(component),
          Value::Ongoing(OngoingInterval::SinceUntilNow(since))};
}

// --- Catalog ----------------------------------------------------------------

TEST(ServerCatalogTest, CommitsPublishMonotoneSequences) {
  Catalog catalog;
  EXPECT_EQ(catalog.commit_seq(), 0u);

  auto created = catalog.CreateTable("Bugs", BugsSchema());
  ASSERT_TRUE(created.ok()) << created.status();
  EXPECT_EQ(*created, 1u);

  auto first = catalog.Insert("Bugs", BugRow(500, "spam", 10));
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(*first, 2u);
  auto second = catalog.Insert("Bugs", BugRow(501, "ui", 20));
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*second, 3u);
  EXPECT_EQ(catalog.commit_seq(), 3u);

  // Duplicate creation and unknown tables fail without consuming a
  // sequence number.
  EXPECT_FALSE(catalog.CreateTable("Bugs", BugsSchema()).ok());
  EXPECT_FALSE(catalog.Insert("Nope", BugRow(1, "x", 0)).ok());
  // A malformed row (arity) fails validation before any mutation.
  EXPECT_FALSE(catalog.Insert("Bugs", {Value::Int64(1)}).ok());
  EXPECT_EQ(catalog.commit_seq(), 3u);
  auto next = catalog.Insert("Bugs", BugRow(502, "perf", 30));
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(*next, 4u);
}

TEST(ServerCatalogTest, PinnedSnapshotsAreStableAcrossCommits) {
  Catalog catalog;
  ASSERT_TRUE(catalog.CreateTable("Bugs", BugsSchema()).ok());
  ASSERT_TRUE(catalog.Insert("Bugs", BugRow(500, "spam", 10)).ok());

  Snapshot before = catalog.PinSnapshot();
  auto before_data = before.Get("Bugs");
  ASSERT_TRUE(before_data.ok());
  const std::multiset<std::string> want = Fingerprint(**before_data);
  EXPECT_EQ((*before_data)->size(), 1u);

  ASSERT_TRUE(catalog.Insert("Bugs", BugRow(501, "ui", 20)).ok());
  ASSERT_TRUE(catalog.Insert("Bugs", BugRow(502, "perf", 30)).ok());

  // The pinned snapshot keeps resolving the exact pre-commit version.
  auto still = before.Get("Bugs");
  ASSERT_TRUE(still.ok());
  EXPECT_EQ(Fingerprint(**still), want);
  EXPECT_EQ(before.commit_seq(), 2u);

  // A fresh pin observes every commit.
  Snapshot after = catalog.PinSnapshot();
  auto after_data = after.Get("Bugs");
  ASSERT_TRUE(after_data.ok());
  EXPECT_EQ((*after_data)->size(), 3u);
  EXPECT_EQ(after.commit_seq(), 4u);

  // Unknown tables are NotFound at snapshot resolution.
  EXPECT_FALSE(after.Get("Nope").ok());
  EXPECT_EQ(after.Names(), std::vector<std::string>{"Bugs"});
}

TEST(ServerCatalogTest, TimeTravelWithinRingAndMaterializeBelowIt) {
  Catalog catalog(/*version_ring_cap=*/3);
  ASSERT_TRUE(catalog.CreateTable("Bugs", BugsSchema()).ok());  // seq 1
  for (int i = 0; i < 5; ++i) {                                 // seq 2..6
    ASSERT_TRUE(
        catalog.Insert("Bugs", BugRow(500 + i, "spam", 10 * (i + 1))).ok());
  }
  Snapshot snap = catalog.PinSnapshot();
  ASSERT_EQ(snap.commit_seq(), 6u);

  // The last 3 versions (seq 4, 5, 6) travel lock-free.
  for (uint64_t seq = 4; seq <= 6; ++seq) {
    auto at = snap.GetAsOf("Bugs", seq);
    ASSERT_TRUE(at.ok()) << at.status();
    EXPECT_EQ((*at)->size(), static_cast<size_t>(seq - 1));
  }
  // A sequence above the snapshot resolves to the newest <= seq.
  auto above = snap.GetAsOf("Bugs", 99);
  ASSERT_TRUE(above.ok());
  EXPECT_EQ((*above)->size(), 5u);

  // Below the ring: OutOfRange from the snapshot; the master store
  // answers exactly down to the GC horizon (the oldest retained ring
  // sequence) and refuses with a typed error below it — superseded
  // versions there have been garbage-collected.
  auto fell_off = snap.GetAsOf("Bugs", 2);
  ASSERT_FALSE(fell_off.ok());
  EXPECT_EQ(fell_off.status().code(), StatusCode::kOutOfRange);
  auto horizon = catalog.GcHorizon("Bugs");
  ASSERT_TRUE(horizon.ok()) << horizon.status();
  EXPECT_EQ(*horizon, 4u);  // ring front after six commits at cap 3
  for (uint64_t seq = *horizon; seq <= 6; ++seq) {
    auto mat = catalog.MaterializeAsOf("Bugs", seq);
    ASSERT_TRUE(mat.ok()) << mat.status();
    EXPECT_EQ((*mat)->size(), static_cast<size_t>(seq - 1)) << "seq " << seq;
  }
  for (uint64_t seq = 1; seq < *horizon; ++seq) {
    auto gone = catalog.MaterializeAsOf("Bugs", seq);
    ASSERT_FALSE(gone.ok()) << "seq " << seq;
    EXPECT_EQ(gone.status().code(), StatusCode::kOutOfRange);
  }
}

TEST(ServerCatalogTest, GcBoundsMasterVersionsUnderSustainedChurn) {
  constexpr size_t kRingCap = 4;
  Catalog catalog(kRingCap);
  ASSERT_TRUE(catalog.CreateTable("Bugs", BugsSchema()).ok());

  // Churn: each round inserts a row valid from 100 and deletes it at
  // tc 5, making the closed valid time always-empty — the superseded
  // version becomes pure garbage once it falls below the ring.
  auto churn = [&catalog](int64_t bid) {
    EXPECT_TRUE(catalog.Insert("Bugs", BugRow(bid, "gc", 100)).ok());
    size_t deleted = 0;
    auto del = catalog.TemporalDeleteWhere(
        "Bugs", 5,
        [bid](const Tuple& t) { return t.value(0).AsInt64() == bid; },
        &deleted);
    EXPECT_TRUE(del.ok()) << del.status();
    EXPECT_EQ(deleted, 1u);
  };

  // 40 rounds = 80 commits: an order of magnitude past the ring. The
  // master must reach a steady state instead of growing by one
  // superseded version per round.
  constexpr int kRounds = 40;
  for (int64_t i = 0; i < kRounds / 2; ++i) churn(600 + i);
  auto mid = catalog.MasterVersionCount("Bugs");
  ASSERT_TRUE(mid.ok()) << mid.status();
  for (int64_t i = kRounds / 2; i < kRounds; ++i) churn(600 + i);
  auto end = catalog.MasterVersionCount("Bugs");
  ASSERT_TRUE(end.ok());
  EXPECT_EQ(*mid, *end);  // steady state, not linear growth
  EXPECT_LE(*end, 2 * kRingCap + 2);  // bounded by the retention window

  // The horizon trails the newest commit by the ring capacity (every
  // commit publishes this table, so the ring front is commit-dense).
  auto horizon = catalog.GcHorizon("Bugs");
  ASSERT_TRUE(horizon.ok());
  EXPECT_EQ(*horizon, catalog.commit_seq() - kRingCap + 1);

  // Reads at and above the horizon stay exact: the final round's insert
  // and delete commits are version-accurate.
  const uint64_t top = catalog.commit_seq();
  auto at_insert = catalog.MaterializeAsOf("Bugs", top - 1);
  ASSERT_TRUE(at_insert.ok()) << at_insert.status();
  EXPECT_EQ((*at_insert)->size(), 1u);
  auto at_delete = catalog.MaterializeAsOf("Bugs", top);
  ASSERT_TRUE(at_delete.ok());
  EXPECT_EQ((*at_delete)->size(), 0u);
  EXPECT_TRUE(catalog.MaterializeAsOf("Bugs", *horizon).ok());

  // Below the horizon: a typed refusal, not a silently wrong answer.
  auto below = catalog.MaterializeAsOf("Bugs", *horizon - 1);
  ASSERT_FALSE(below.ok());
  EXPECT_EQ(below.status().code(), StatusCode::kOutOfRange);
}

TEST(ServerCatalogTest, StampedModificationsMatchPlainOps) {
  // The serving catalog's current state after a DML sequence equals the
  // same sequence of PLAIN Torp modifications on a plain relation — the
  // invariant the concurrent equivalence replay relies on.
  OngoingRelation plain(BugsSchema());
  ASSERT_TRUE(plain.Insert(BugRow(500, "spam", 10)).ok());
  ASSERT_TRUE(plain.Insert(BugRow(501, "spam", 20)).ok());
  ASSERT_TRUE(plain.Insert(BugRow(502, "ui", 30)).ok());

  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterTable("Bugs", plain).ok());

  ModificationFilter is_spam = [](const Tuple& t) {
    return t.value(1).AsString() == "spam";
  };
  auto updater = [](const Tuple& t) {
    std::vector<Value> values = t.values();
    values[1] = Value::String("triaged");
    return values;
  };

  size_t deleted = 0;
  auto del = catalog.TemporalDeleteWhere("Bugs", 40, is_spam, &deleted);
  ASSERT_TRUE(del.ok()) << del.status();
  EXPECT_EQ(deleted, 2u);
  ModificationFilter is_ui = [](const Tuple& t) {
    return t.value(1).AsString() == "ui";
  };
  size_t updated = 0;
  auto upd = catalog.TemporalUpdateWhere("Bugs", 50, is_ui, updater, &updated);
  ASSERT_TRUE(upd.ok()) << upd.status();
  EXPECT_EQ(updated, 1u);

  ASSERT_TRUE(TemporalDelete(&plain, 2, 40, is_spam).ok());
  ASSERT_TRUE(TemporalUpdate(&plain, 2, 50, is_ui, updater).ok());

  auto served = catalog.PinSnapshot().Get("Bugs");
  ASSERT_TRUE(served.ok());
  EXPECT_EQ(Fingerprint(**served), Fingerprint(plain));

  // DML on a table without a PERIOD column is rejected cleanly.
  ASSERT_TRUE(
      catalog.CreateTable("Flat", Schema({{"X", ValueType::kInt64}})).ok());
  EXPECT_FALSE(
      catalog.TemporalDeleteWhere("Flat", 10, is_spam, nullptr).ok());
}

TEST(ServerCatalogTest, SnapshotViewIsReadOnly) {
  Catalog catalog;
  ASSERT_TRUE(catalog.CreateTable("Bugs", BugsSchema()).ok());
  ASSERT_TRUE(catalog.Insert("Bugs", BugRow(500, "spam", 10)).ok());

  sql::Catalog view = catalog.PinSnapshot().View();
  ASSERT_TRUE(view.Contains("Bugs"));
  ASSERT_TRUE(view.Get("Bugs").ok());
  // Mutations cannot sneak past the commit path through a view.
  EXPECT_FALSE(view.GetMutable("Bugs").ok());
  // Reads through the view run the full query pipeline.
  auto result = sql::RunQuery("SELECT * FROM Bugs", view);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->size(), 1u);
}

// --- Session ----------------------------------------------------------------

TEST(SessionTest, StatementsRoundTripThroughTheServingPath) {
  Catalog catalog;
  SessionManager manager(&catalog);
  auto session = manager.CreateSession();

  auto created = session->Execute(
      "CREATE TABLE Bugs (BID INT, C TEXT, VT PERIOD)");
  ASSERT_TRUE(created.ok()) << created.status();
  EXPECT_EQ(created->snapshot_seq, 1u);

  auto inserted = session->Execute(
      "INSERT INTO Bugs VALUES (500, 'spam', PERIOD ['01/25', NOW))");
  ASSERT_TRUE(inserted.ok()) << inserted.status();
  EXPECT_EQ(inserted->result.affected, 1u);
  EXPECT_EQ(inserted->snapshot_seq, 2u);
  ASSERT_TRUE(session->Execute("INSERT INTO Bugs VALUES (501, 'ui', "
                               "PERIOD ['03/30', NOW))")
                  .ok());

  auto selected = session->Execute("SELECT * FROM Bugs WHERE BID = 500");
  ASSERT_TRUE(selected.ok()) << selected.status();
  ASSERT_TRUE(selected->result.relation.has_value());
  EXPECT_EQ(selected->result.affected, 1u);
  EXPECT_EQ(selected->snapshot_seq, 3u);
  EXPECT_EQ(session->context().snapshot_seq(), 3u);

  auto updated = session->Execute(
      "UPDATE Bugs SET C = 'triaged' WHERE BID = 500 AT DATE '06/01'");
  ASSERT_TRUE(updated.ok()) << updated.status();
  EXPECT_EQ(updated->result.affected, 1u);

  auto deleted = session->Execute(
      "DELETE FROM Bugs WHERE BID = 501 AT DATE '07/01'");
  ASSERT_TRUE(deleted.ok()) << deleted.status();
  EXPECT_EQ(deleted->result.affected, 1u);

  // Errors are clean: unknown table, malformed SQL.
  EXPECT_FALSE(session->Execute("SELECT * FROM Nope").ok());
  EXPECT_FALSE(session->Execute("FROBNICATE").ok());
}

TEST(SessionTest, SetKnobsFlowIntoTheSession) {
  Catalog catalog;
  SessionManager manager(&catalog);
  auto session = manager.CreateSession();

  ASSERT_TRUE(session->Execute("SET workers = 4;").ok());
  EXPECT_EQ(session->options().workers, 4u);
  ASSERT_TRUE(session->Execute("SET memory_limit_mb = 64;").ok());
  EXPECT_EQ(session->options().memory_limit_bytes, 64u << 20);
  ASSERT_TRUE(session->Execute("SET timeout_ms = 250").ok());
  EXPECT_EQ(session->options().timeout_ms, 250);
  ASSERT_TRUE(session->Execute("SET batch_size = 256;").ok());
  EXPECT_EQ(session->options().batch_size, 256u);
  ASSERT_TRUE(session->Execute("SET batch_size = 0;").ok());
  EXPECT_EQ(session->options().batch_size, 0u);

  // workers is clamped to >= 1; 0 disables the budget.
  ASSERT_TRUE(session->Execute("SET workers = 0;").ok());
  EXPECT_EQ(session->options().workers, 1u);
  ASSERT_TRUE(session->Execute("SET memory_limit_mb = 0;").ok());
  EXPECT_EQ(session->options().memory_limit_bytes, 0u);

  // Unknown knobs and malformed values are rejected.
  EXPECT_FALSE(session->Execute("SET bogus = 1;").ok());
  EXPECT_FALSE(session->Execute("SET workers = 'two';").ok());
  EXPECT_FALSE(session->Execute("SET workers = 1; extra").ok());
}

TEST(SessionTest, MemoryBudgetAndTimeoutApplyPerStatement) {
  Catalog catalog;
  SessionManager manager(&catalog);
  auto session = manager.CreateSession();
  ASSERT_TRUE(
      session->Execute("CREATE TABLE Bugs (BID INT, C TEXT, VT PERIOD)")
          .ok());
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(session
                    ->Execute("INSERT INTO Bugs VALUES (" +
                              std::to_string(i) +
                              ", 'spam', PERIOD ['01/01', NOW))")
                    .ok());
  }

  SessionOptions tiny;
  tiny.memory_limit_bytes = 8;  // smaller than any materialized tuple
  auto budgeted = manager.CreateSession(tiny);
  auto exhausted = budgeted->Execute("SELECT * FROM Bugs WHERE BID < 10");
  ASSERT_FALSE(exhausted.ok());
  EXPECT_EQ(exhausted.status().code(), StatusCode::kResourceExhausted);
  // The budget is per statement, not sticky poison: lifting it via SET
  // makes the next statement pass.
  ASSERT_TRUE(budgeted->Execute("SET memory_limit_mb = 64;").ok());
  EXPECT_TRUE(budgeted->Execute("SELECT * FROM Bugs WHERE BID < 10").ok());

  // A pre-cancelled context is rearmed by Execute's Reset.
  session->Cancel();
  EXPECT_TRUE(session->Execute("SELECT * FROM Bugs").ok());

  // batch_size = 1 forces the smallest drain batches; results are
  // unchanged (the batch capacity is a perf knob, not a semantic one).
  ASSERT_TRUE(session->Execute("SET batch_size = 1;").ok());
  auto one_by_one = session->Execute("SELECT * FROM Bugs WHERE BID < 10");
  ASSERT_TRUE(one_by_one.ok());
  EXPECT_EQ(one_by_one->result.affected, 10u);
}

TEST(SessionTest, PinnedSnapshotGivesRepeatableReads) {
  Catalog catalog;
  SessionManager manager(&catalog);
  auto reader = manager.CreateSession();
  auto writer = manager.CreateSession();
  ASSERT_TRUE(
      writer->Execute("CREATE TABLE Bugs (BID INT, C TEXT, VT PERIOD)").ok());
  ASSERT_TRUE(writer
                  ->Execute("INSERT INTO Bugs VALUES (500, 'spam', "
                            "PERIOD ['01/25', NOW))")
                  .ok());

  auto pinned_at = reader->PinSnapshot();
  ASSERT_TRUE(pinned_at.ok());
  EXPECT_EQ(*pinned_at, 2u);
  EXPECT_TRUE(reader->pinned());

  ASSERT_TRUE(writer
                  ->Execute("INSERT INTO Bugs VALUES (501, 'ui', "
                            "PERIOD ['03/30', NOW))")
                  .ok());

  // The pinned reader keeps seeing the world at sequence 2...
  auto repeat1 = reader->Execute("SELECT * FROM Bugs");
  ASSERT_TRUE(repeat1.ok());
  EXPECT_EQ(repeat1->result.affected, 1u);
  EXPECT_EQ(repeat1->snapshot_seq, 2u);
  auto repeat2 = reader->Execute("SELECT * FROM Bugs");
  ASSERT_TRUE(repeat2.ok());
  EXPECT_EQ(Fingerprint(*repeat1->result.relation),
            Fingerprint(*repeat2->result.relation));

  // ...and read-latest resumes after Unpin.
  reader->Unpin();
  EXPECT_FALSE(reader->pinned());
  auto fresh = reader->Execute("SELECT * FROM Bugs");
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->result.affected, 2u);
  EXPECT_EQ(fresh->snapshot_seq, 3u);
}

TEST(SessionTest, ManagerTracksLiveSessions) {
  Catalog catalog;
  SessionManager manager(&catalog);
  EXPECT_EQ(manager.active_sessions(), 0u);
  auto a = manager.CreateSession();
  auto b = manager.CreateSession();
  EXPECT_NE(a->id(), b->id());
  EXPECT_EQ(manager.active_sessions(), 2u);
  b.reset();
  EXPECT_EQ(manager.active_sessions(), 1u);
  auto c = manager.CreateSession();
  EXPECT_EQ(manager.active_sessions(), 2u);
  EXPECT_NE(c->id(), a->id());
}

}  // namespace
}  // namespace server
}  // namespace ongoingdb
