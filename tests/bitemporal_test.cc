// Tests of the bitemporal wrapper: valid time, transaction time, and
// reference time are orthogonal (Sec. IV of the paper).
#include "relation/bitemporal.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

namespace ongoingdb {
namespace {

Schema BugSchema() {
  return Schema({{"BID", ValueType::kInt64},
                 {"VT", ValueType::kOngoingInterval}});
}

std::vector<Value> Bug(int64_t id, TimePoint since) {
  return {Value::Int64(id),
          Value::Ongoing(OngoingInterval::SinceUntilNow(since))};
}

TEST(BitemporalTest, InsertSetsUntilChangedTransactionTime) {
  BitemporalRelation r(BugSchema());
  ASSERT_TRUE(r.Insert(Bug(500, MD(1, 25)), MD(1, 26)).ok());
  EXPECT_EQ(r.num_versions(), 1u);
  EXPECT_EQ(r.TransactionTime(0),
            (FixedInterval{MD(1, 26), kUntilChanged}));
  EXPECT_EQ(r.Current().size(), 1u);
}

TEST(BitemporalTest, DeleteClosesTransactionTimeButKeepsHistory) {
  BitemporalRelation r(BugSchema());
  ASSERT_TRUE(r.Insert(Bug(500, MD(1, 25)), MD(1, 26)).ok());
  ASSERT_TRUE(r.Insert(Bug(501, MD(3, 30)), MD(3, 31)).ok());
  size_t deleted = r.Delete(
      [](const Tuple& t) { return t.value(0).AsInt64() == 500; }, MD(6, 1));
  EXPECT_EQ(deleted, 1u);
  // The version is gone from the current state but still stored.
  EXPECT_EQ(r.Current().size(), 1u);
  EXPECT_EQ(r.num_versions(), 2u);
  EXPECT_EQ(r.TransactionTime(0), (FixedInterval{MD(1, 26), MD(6, 1)}));
  // Deleting again matches nothing (already superseded).
  EXPECT_EQ(r.Delete([](const Tuple&) { return true; }, MD(7, 1)), 1u);
}

TEST(BitemporalTest, AsOfTimeTravel) {
  BitemporalRelation r(BugSchema());
  ASSERT_TRUE(r.Insert(Bug(500, MD(1, 25)), MD(1, 26)).ok());
  ASSERT_TRUE(r.Insert(Bug(501, MD(3, 30)), MD(3, 31)).ok());
  r.Delete([](const Tuple& t) { return t.value(0).AsInt64() == 500; },
           MD(6, 1));
  // Before the first insert: empty.
  EXPECT_EQ(r.AsOf(MD(1, 20)).size(), 0u);
  // Between the inserts: only bug 500.
  EXPECT_EQ(r.AsOf(MD(2, 15)).size(), 1u);
  // Between the second insert and the delete: both.
  EXPECT_EQ(r.AsOf(MD(5, 1)).size(), 2u);
  // After the delete: only bug 501.
  OngoingRelation after = r.AsOf(MD(8, 1));
  ASSERT_EQ(after.size(), 1u);
  EXPECT_EQ(after.tuple(0).value(0).AsInt64(), 501);
}

TEST(BitemporalTest, ValidTimeStaysOngoingAcrossTransactionTime) {
  // TT bookkeeping does not instantiate VT: a recovered version still
  // carries [a, now) and still instantiates per reference time.
  BitemporalRelation r(BugSchema());
  ASSERT_TRUE(r.Insert(Bug(500, MD(1, 25)), MD(1, 26)).ok());
  r.Delete([](const Tuple&) { return true; }, MD(6, 1));
  OngoingRelation historical = r.AsOf(MD(3, 1));
  ASSERT_EQ(historical.size(), 1u);
  const OngoingInterval& vt =
      historical.tuple(0).value(1).AsOngoingInterval();
  EXPECT_EQ(vt.ToString(), "[01/25, now)");
  EXPECT_EQ(vt.Instantiate(MD(9, 9)),
            (FixedInterval{MD(1, 25), MD(9, 9)}));
}

TEST(BitemporalTest, InsertValidatesSchema) {
  BitemporalRelation r(BugSchema());
  EXPECT_FALSE(r.Insert({Value::String("wrong")}, 0).ok());
  EXPECT_EQ(r.num_versions(), 0u);
}

TEST(BitemporalTest, CurrentStateLogReplaysToCurrent) {
  // The current-state log records exactly the delta of Current() — the
  // feed a materialized view over the serving path replays. GC never
  // logs: discarding superseded versions leaves Current() unchanged.
  BitemporalRelation r(BugSchema());
  ASSERT_TRUE(r.Insert(Bug(500, MD(1, 25)), MD(1, 26)).ok());  // pre-log
  r.EnableCurrentStateLog();
  ModificationLog* log = r.current_state_log();
  ASSERT_NE(log, nullptr);
  EXPECT_EQ(log->size(), 0u);  // enabling is not retroactive
  OngoingRelation replay = r.Current();
  const uint64_t since = log->next_seq();

  ASSERT_TRUE(r.Insert(Bug(501, MD(3, 30)), MD(3, 31)).ok());
  r.AppendVersionUnchecked(Tuple({Value::Int64(502),
                                  Value::Ongoing(
                                      OngoingInterval::SinceUntilNow(MD(4, 1)))}),
                           MD(4, 2));
  EXPECT_EQ(r.Delete(
                [](const Tuple& t) { return t.value(0).AsInt64() == 500; },
                MD(6, 1)),
            1u);
  ASSERT_TRUE(r.CloseVersion(1, MD(7, 1)).ok());  // supersedes bug 501
  const size_t logged = log->size();
  EXPECT_EQ(logged, 4u);  // 2 post-log inserts + 2 current-state removals
  EXPECT_GT(r.DropVersionsBefore(MD(8, 1)), 0u);
  EXPECT_EQ(log->size(), logged);  // GC is invisible to the log

  std::vector<const Modification*> entries;
  ASSERT_TRUE(log->EntriesSince(since, &entries));
  for (const Modification* m : entries) {
    if (m->kind == Modification::Kind::kInsert) {
      replay.AppendUnchecked(m->tuple);
      continue;
    }
    bool found = false;
    for (size_t i = 0; i < replay.size(); ++i) {
      if (replay.tuple(i).ToString() == m->tuple.ToString()) {
        replay.SwapRemove(i);
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "unmatched removal: " << m->tuple.ToString();
  }
  std::multiset<std::string> got, want;
  const OngoingRelation current = r.Current();
  for (const Tuple& t : replay.tuples()) got.insert(t.ToString());
  for (const Tuple& t : current.tuples()) want.insert(t.ToString());
  EXPECT_EQ(got, want);
}

}  // namespace
}  // namespace ongoingdb
