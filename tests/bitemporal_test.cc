// Tests of the bitemporal wrapper: valid time, transaction time, and
// reference time are orthogonal (Sec. IV of the paper).
#include "relation/bitemporal.h"

#include <gtest/gtest.h>

namespace ongoingdb {
namespace {

Schema BugSchema() {
  return Schema({{"BID", ValueType::kInt64},
                 {"VT", ValueType::kOngoingInterval}});
}

std::vector<Value> Bug(int64_t id, TimePoint since) {
  return {Value::Int64(id),
          Value::Ongoing(OngoingInterval::SinceUntilNow(since))};
}

TEST(BitemporalTest, InsertSetsUntilChangedTransactionTime) {
  BitemporalRelation r(BugSchema());
  ASSERT_TRUE(r.Insert(Bug(500, MD(1, 25)), MD(1, 26)).ok());
  EXPECT_EQ(r.num_versions(), 1u);
  EXPECT_EQ(r.TransactionTime(0),
            (FixedInterval{MD(1, 26), kUntilChanged}));
  EXPECT_EQ(r.Current().size(), 1u);
}

TEST(BitemporalTest, DeleteClosesTransactionTimeButKeepsHistory) {
  BitemporalRelation r(BugSchema());
  ASSERT_TRUE(r.Insert(Bug(500, MD(1, 25)), MD(1, 26)).ok());
  ASSERT_TRUE(r.Insert(Bug(501, MD(3, 30)), MD(3, 31)).ok());
  size_t deleted = r.Delete(
      [](const Tuple& t) { return t.value(0).AsInt64() == 500; }, MD(6, 1));
  EXPECT_EQ(deleted, 1u);
  // The version is gone from the current state but still stored.
  EXPECT_EQ(r.Current().size(), 1u);
  EXPECT_EQ(r.num_versions(), 2u);
  EXPECT_EQ(r.TransactionTime(0), (FixedInterval{MD(1, 26), MD(6, 1)}));
  // Deleting again matches nothing (already superseded).
  EXPECT_EQ(r.Delete([](const Tuple&) { return true; }, MD(7, 1)), 1u);
}

TEST(BitemporalTest, AsOfTimeTravel) {
  BitemporalRelation r(BugSchema());
  ASSERT_TRUE(r.Insert(Bug(500, MD(1, 25)), MD(1, 26)).ok());
  ASSERT_TRUE(r.Insert(Bug(501, MD(3, 30)), MD(3, 31)).ok());
  r.Delete([](const Tuple& t) { return t.value(0).AsInt64() == 500; },
           MD(6, 1));
  // Before the first insert: empty.
  EXPECT_EQ(r.AsOf(MD(1, 20)).size(), 0u);
  // Between the inserts: only bug 500.
  EXPECT_EQ(r.AsOf(MD(2, 15)).size(), 1u);
  // Between the second insert and the delete: both.
  EXPECT_EQ(r.AsOf(MD(5, 1)).size(), 2u);
  // After the delete: only bug 501.
  OngoingRelation after = r.AsOf(MD(8, 1));
  ASSERT_EQ(after.size(), 1u);
  EXPECT_EQ(after.tuple(0).value(0).AsInt64(), 501);
}

TEST(BitemporalTest, ValidTimeStaysOngoingAcrossTransactionTime) {
  // TT bookkeeping does not instantiate VT: a recovered version still
  // carries [a, now) and still instantiates per reference time.
  BitemporalRelation r(BugSchema());
  ASSERT_TRUE(r.Insert(Bug(500, MD(1, 25)), MD(1, 26)).ok());
  r.Delete([](const Tuple&) { return true; }, MD(6, 1));
  OngoingRelation historical = r.AsOf(MD(3, 1));
  ASSERT_EQ(historical.size(), 1u);
  const OngoingInterval& vt =
      historical.tuple(0).value(1).AsOngoingInterval();
  EXPECT_EQ(vt.ToString(), "[01/25, now)");
  EXPECT_EQ(vt.Instantiate(MD(9, 9)),
            (FixedInterval{MD(1, 25), MD(9, 9)}));
}

TEST(BitemporalTest, InsertValidatesSchema) {
  BitemporalRelation r(BugSchema());
  EXPECT_FALSE(r.Insert({Value::String("wrong")}, 0).ok());
  EXPECT_EQ(r.num_versions(), 0u);
}

}  // namespace
}  // namespace ongoingdb
