// Columnar-vs-scalar equivalence for the vectorized interval-predicate
// kernels (query/kernels.h). Three layers of defense:
//
//  * the raw selection-vector kernels against the scalar expression
//    evaluator on random interval data (including empty intervals);
//  * BatchPredicate's compile-time atom classification (what is
//    kernel-eligible, what stays in the scalar remainder);
//  * end-to-end plan equivalence against the reference evaluator of
//    tests/testing/plan_fuzz.h — every Allen op, literal and
//    column-column probes, both execution modes, kernels on and off,
//    serial and forced-parallel workers 1/2/4, and exact batch-boundary
//    result sizes 0/1/cap/cap+1.
#include "query/kernels.h"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "query/executor.h"
#include "query/physical.h"
#include "relation/tuple_batch.h"
#include "testing/plan_fuzz.h"

namespace ongoingdb {
namespace {

using plan_fuzz::Fingerprint;
using plan_fuzz::ForcedParallel;
using plan_fuzz::FuzzSeeds;
using plan_fuzz::MakeMixedRelation;
using plan_fuzz::ReferenceExecute;
using plan_fuzz::ReferenceExecuteAt;

// Restores the kernel toggle on scope exit — tests flip it to compare
// the columnar and scalar compilations of the same plan.
struct KernelToggle {
  explicit KernelToggle(bool enabled) : saved(kernels::KernelFilteringEnabled()) {
    kernels::SetKernelFilteringEnabled(enabled);
  }
  ~KernelToggle() { kernels::SetKernelFilteringEnabled(saved); }
  bool saved;
};

const std::vector<AllenOp>& AllAllenOps() {
  static const std::vector<AllenOp> ops = {
      AllenOp::kBefore,   AllenOp::kMeets,  AllenOp::kOverlaps,
      AllenOp::kStarts,   AllenOp::kFinishes, AllenOp::kDuring,
      AllenOp::kEquals};
  return ops;
}

// Random fixed interval over a small domain; ~1/8 empty so the
// non-empty guards of the fixed Allen comparators are exercised.
FixedInterval RandomFixed(Rng& rng) {
  TimePoint s = rng.Uniform(0, 100);
  if (rng.Bernoulli(0.125)) return FixedInterval{s, s};
  return FixedInterval{s, s + rng.Uniform(1, 40)};
}

// The scalar reference for one row: the expression evaluator's fixed
// path, which routes through the core Allen comparators — deliberately
// not the kernels' arithmetic.
bool ScalarAllen(AllenOp op, FixedInterval a, FixedInterval b) {
  Schema schema(
      {{"A", ValueType::kFixedInterval}, {"B", ValueType::kFixedInterval}});
  Tuple t({Value::Interval(a), Value::Interval(b)});
  Result<bool> r =
      Allen(op, Col("A"), Col("B"))->EvalPredicateFixed(schema, t);
  EXPECT_TRUE(r.ok());
  return *r;
}

bool ScalarContains(FixedInterval i, TimePoint p) {
  Schema schema(
      {{"I", ValueType::kFixedInterval}, {"P", ValueType::kTimePoint}});
  Tuple t({Value::Interval(i), Value::Time(p)});
  Result<bool> r =
      ContainsExpr(Col("I"), Col("P"))->EvalPredicateFixed(schema, t);
  EXPECT_TRUE(r.ok());
  return *r;
}

class KernelFuzzTest : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, KernelFuzzTest,
                         ::testing::ValuesIn(FuzzSeeds(8)));

// Raw kernels against the scalar expression evaluator, row by row.
TEST_P(KernelFuzzTest, RawKernelsMatchScalarEvaluator) {
  const uint64_t seed = GetParam();
  ONGOINGDB_FUZZ_SEED_TRACE(seed);
  Rng rng(seed);
  constexpr size_t kN = 64;
  std::vector<TimePoint> ls(kN), le(kN), rs(kN), re(kN), pt(kN);
  for (size_t i = 0; i < kN; ++i) {
    FixedInterval l = RandomFixed(rng);
    FixedInterval r = RandomFixed(rng);
    ls[i] = l.start;
    le[i] = l.end;
    rs[i] = r.start;
    re[i] = r.end;
    pt[i] = rng.Uniform(0, 120);
  }
  std::vector<uint32_t> sel(kN), out(kN);
  auto reset_sel = [&] { std::iota(sel.begin(), sel.end(), uint32_t{0}); };

  for (AllenOp op : AllAllenOps()) {
    for (bool column_is_lhs : {true, false}) {
      std::optional<IntervalProbeOp> probe_op =
          kernels::ProbeOpFor(op, column_is_lhs);
      if (!probe_op.has_value()) continue;  // no kernel form; skip here
      // Column vs literal (the literal is row 0's rhs interval; also an
      // empty literal to hit the probe-empty early-out).
      for (FixedInterval probe :
           {FixedInterval{rs[0], re[0]}, FixedInterval{5, 5}}) {
        reset_sel();
        size_t m = kernels::FilterIntervalVsLiteral(
            *probe_op, ls.data(), le.data(), probe, sel.data(), kN,
            out.data());
        std::vector<uint32_t> expect;
        for (uint32_t i = 0; i < kN; ++i) {
          FixedInterval c{ls[i], le[i]};
          bool keep = column_is_lhs ? ScalarAllen(op, c, probe)
                                    : ScalarAllen(op, probe, c);
          if (keep) expect.push_back(i);
        }
        ASSERT_EQ(std::vector<uint32_t>(out.begin(), out.begin() + m), expect)
            << "op " << static_cast<int>(op) << " column_is_lhs "
            << column_is_lhs;
      }
    }
    // Column vs column (lhs column ALLEN-OP rhs column).
    std::optional<IntervalProbeOp> probe_op = kernels::ProbeOpFor(op, true);
    if (probe_op.has_value()) {
      reset_sel();
      size_t m = kernels::FilterIntervalVsInterval(
          *probe_op, ls.data(), le.data(), rs.data(), re.data(), sel.data(),
          kN, out.data());
      std::vector<uint32_t> expect;
      for (uint32_t i = 0; i < kN; ++i) {
        if (ScalarAllen(op, {ls[i], le[i]}, {rs[i], re[i]})) {
          expect.push_back(i);
        }
      }
      ASSERT_EQ(std::vector<uint32_t>(out.begin(), out.begin() + m), expect)
          << "column-column op " << static_cast<int>(op);
    }
  }

  // CONTAINS: literal point and point column.
  TimePoint p = rng.Uniform(0, 120);
  reset_sel();
  size_t m = kernels::FilterIntervalVsLiteral(IntervalProbeOp::kContains,
                                              ls.data(), le.data(),
                                              FixedInterval{p, p}, sel.data(),
                                              kN, out.data());
  std::vector<uint32_t> expect;
  for (uint32_t i = 0; i < kN; ++i) {
    if (ScalarContains({ls[i], le[i]}, p)) expect.push_back(i);
  }
  EXPECT_EQ(std::vector<uint32_t>(out.begin(), out.begin() + m), expect);

  reset_sel();
  m = kernels::FilterIntervalContainsPoint(ls.data(), le.data(), pt.data(),
                                           sel.data(), kN, out.data());
  expect.clear();
  for (uint32_t i = 0; i < kN; ++i) {
    if (ScalarContains({ls[i], le[i]}, pt[i])) expect.push_back(i);
  }
  EXPECT_EQ(std::vector<uint32_t>(out.begin(), out.begin() + m), expect);
}

// Compile-time atom classification: what lands in atoms_, what stays in
// the scalar remainder.
TEST(BatchPredicateTest, ClassifiesConjuncts) {
  Schema schema({{"ID", ValueType::kInt64},
                 {"FT", ValueType::kFixedInterval},
                 {"VT", ValueType::kOngoingInterval}});
  const ExprPtr eligible =
      OverlapsExpr(Col("FT"), Lit(Value::Interval(FixedInterval{3, 9})));

  kernels::BatchPredicate bp;
  bp.Compile(eligible, schema, /*at_reference_time=*/false, 0);
  EXPECT_TRUE(bp.HasKernelAtoms());
  EXPECT_EQ(bp.remainder(), nullptr);

  // Unsupported Allen op: everything stays scalar.
  bp.Compile(Allen(AllenOp::kDuring, Col("FT"),
                   Lit(Value::Interval(FixedInterval{3, 9}))),
             schema, false, 0);
  EXPECT_FALSE(bp.HasKernelAtoms());
  EXPECT_NE(bp.remainder(), nullptr);

  // Mixed conjunction: the Allen atom compiles, the int comparison is
  // the remainder.
  bp.Compile(And(eligible, Lt(Col("ID"), Lit(int64_t{5}))), schema, false, 0);
  EXPECT_TRUE(bp.HasKernelAtoms());
  ASSERT_NE(bp.remainder(), nullptr);
  EXPECT_NE(AsCompare(bp.remainder()), std::nullopt);

  // Ongoing column: never eligible.
  bp.Compile(OverlapsExpr(Col("VT"), Lit(Value::Interval(FixedInterval{3, 9}))),
             schema, false, 0);
  EXPECT_FALSE(bp.HasKernelAtoms());

  // Ongoing literal: ineligible in ongoing mode, instantiated (hence
  // eligible) in at-reference-time mode.
  const ExprPtr ongoing_lit =
      OverlapsExpr(Col("FT"), Lit(OngoingInterval::SinceUntilNow(4)));
  bp.Compile(ongoing_lit, schema, false, 0);
  EXPECT_FALSE(bp.HasKernelAtoms());
  bp.Compile(ongoing_lit, schema, true, 50);
  EXPECT_TRUE(bp.HasKernelAtoms());

  // The global toggle forces the scalar path at compile time.
  {
    KernelToggle off(false);
    bp.Compile(eligible, schema, false, 0);
    EXPECT_FALSE(bp.HasKernelAtoms());
    EXPECT_NE(bp.remainder(), nullptr);
  }
}

// One filter plan, executed every way the engine can execute it; all
// fingerprints must match the reference evaluator's.
void ExpectFilterEquivalence(OngoingRelation* rel, const ExprPtr& pred,
                             TimePoint rt) {
  PlanPtr plan = Filter(Scan(rel, "R"), pred);
  Result<OngoingRelation> expect_ongoing = ReferenceExecute(plan);
  Result<OngoingRelation> expect_at = ReferenceExecuteAt(plan, rt);
  ASSERT_TRUE(expect_ongoing.ok());
  ASSERT_TRUE(expect_at.ok());

  for (bool kernel_on : {true, false}) {
    KernelToggle toggle(kernel_on);
    SCOPED_TRACE(::testing::Message() << "kernels " << kernel_on);
    Result<OngoingRelation> got = Execute(plan);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(Fingerprint(*got), Fingerprint(*expect_ongoing));
    Result<OngoingRelation> got_at = ExecuteAtReferenceTime(plan, rt);
    ASSERT_TRUE(got_at.ok());
    EXPECT_EQ(Fingerprint(*got_at), Fingerprint(*expect_at));
    for (size_t workers : {size_t{1}, size_t{2}, size_t{4}}) {
      Result<OngoingRelation> par =
          Execute(plan, ForcedParallel(workers, 3));
      ASSERT_TRUE(par.ok());
      EXPECT_EQ(Fingerprint(*par), Fingerprint(*expect_ongoing))
          << "workers " << workers;
      Result<OngoingRelation> par_at =
          ExecuteAtReferenceTime(plan, rt, ForcedParallel(workers, 3));
      ASSERT_TRUE(par_at.ok());
      EXPECT_EQ(Fingerprint(*par_at), Fingerprint(*expect_at))
          << "workers " << workers;
    }
  }
}

// Every Allen op, both literal orientations, with and without an extra
// scalar conjunct (the remainder path), against the fixed-interval
// column of the mixed relation.
TEST_P(KernelFuzzTest, FilterVsLiteralEquivalence) {
  const uint64_t seed = GetParam();
  ONGOINGDB_FUZZ_SEED_TRACE(seed);
  Rng rng(seed ^ 0x9e3779b97f4a7c15ull);
  OngoingRelation rel = MakeMixedRelation(seed, "M_", 40);
  const TimePoint rt = rng.Uniform(0, 120);
  for (AllenOp op : AllAllenOps()) {
    SCOPED_TRACE(::testing::Message() << "allen op " << static_cast<int>(op));
    const ExprPtr lit = Lit(Value::Interval(RandomFixed(rng)));
    for (bool column_is_lhs : {true, false}) {
      ExprPtr atom = column_is_lhs ? Allen(op, Col("M_FT"), lit)
                                   : Allen(op, lit, Col("M_FT"));
      ExpectFilterEquivalence(&rel, atom, rt);
      // Conjunction with a scalar leftover exercises kernel + remainder.
      ExpectFilterEquivalence(
          &rel, And(atom, Lt(Col("M_ID"), Lit(rng.Uniform(0, 40)))), rt);
    }
  }
}

// Column-vs-column atoms via join residuals: the Allen conjunct pairs
// the two sides' fixed-interval columns, so it can only run in the
// emitters' batch predicates.
TEST_P(KernelFuzzTest, JoinColumnColumnEquivalence) {
  const uint64_t seed = GetParam();
  ONGOINGDB_FUZZ_SEED_TRACE(seed);
  Rng rng(seed ^ 0xc2b2ae3d27d4eb4full);
  OngoingRelation a = MakeMixedRelation(seed, "A_", 12);
  OngoingRelation b = MakeMixedRelation(seed + 1000, "B_", 12);
  const TimePoint rt = rng.Uniform(0, 120);
  for (AllenOp op : AllAllenOps()) {
    SCOPED_TRACE(::testing::Message() << "allen op " << static_cast<int>(op));
    PlanPtr plan = Join(Scan(&a, "A"), Scan(&b, "B"),
                        Allen(op, Col("A_FT"), Col("B_FT")), "L", "R");
    Result<OngoingRelation> expect_ongoing = ReferenceExecute(plan);
    Result<OngoingRelation> expect_at = ReferenceExecuteAt(plan, rt);
    ASSERT_TRUE(expect_ongoing.ok());
    ASSERT_TRUE(expect_at.ok());
    for (bool kernel_on : {true, false}) {
      KernelToggle toggle(kernel_on);
      for (JoinAlgorithm algorithm :
           {JoinAlgorithm::kNestedLoop, JoinAlgorithm::kHash,
            JoinAlgorithm::kSortMerge}) {
        PlanPtr forced = plan_fuzz::WithAlgorithm(plan, algorithm);
        Result<OngoingRelation> got = Execute(forced);
        ASSERT_TRUE(got.ok());
        EXPECT_EQ(Fingerprint(*got), Fingerprint(*expect_ongoing))
            << "kernels " << kernel_on << " algorithm "
            << static_cast<int>(algorithm);
        Result<OngoingRelation> got_at = ExecuteAtReferenceTime(forced, rt);
        ASSERT_TRUE(got_at.ok());
        EXPECT_EQ(Fingerprint(*got_at), Fingerprint(*expect_at))
            << "kernels " << kernel_on << " algorithm "
            << static_cast<int>(algorithm);
      }
      Result<OngoingRelation> par = Execute(plan, ForcedParallel(2, 3));
      ASSERT_TRUE(par.ok());
      EXPECT_EQ(Fingerprint(*par), Fingerprint(*expect_ongoing))
          << "parallel, kernels " << kernel_on;
    }
  }
}

// CONTAINS probes: interval column vs a literal point and vs a paired
// time-point column.
TEST_P(KernelFuzzTest, ContainsEquivalence) {
  const uint64_t seed = GetParam();
  ONGOINGDB_FUZZ_SEED_TRACE(seed);
  Rng rng(seed ^ 0x165667b19e3779f9ull);
  OngoingRelation rel(Schema({{"C_ID", ValueType::kInt64},
                              {"C_FT", ValueType::kFixedInterval},
                              {"C_TP", ValueType::kTimePoint}}));
  for (int64_t i = 0; i < 40; ++i) {
    ASSERT_TRUE(rel.Insert({Value::Int64(i),
                            Value::Interval(RandomFixed(rng)),
                            Value::Time(rng.Uniform(0, 120))})
                    .ok());
  }
  const TimePoint rt = rng.Uniform(0, 120);
  ExpectFilterEquivalence(
      &rel, ContainsExpr(Col("C_FT"), Lit(Value::Time(rng.Uniform(0, 120)))),
      rt);
  ExpectFilterEquivalence(&rel, ContainsExpr(Col("C_FT"), Col("C_TP")), rt);
}

// Exact batch-boundary result sizes through the kernel filter path: the
// stream must produce 0 / 1 / cap / cap+1 survivors without an empty
// batch mid-stream, at capacities 1 and 4.
TEST(KernelBatchBoundaryTest, ExactResultSizes) {
  OngoingRelation rel(
      Schema({{"ID", ValueType::kInt64}, {"FT", ValueType::kFixedInterval}}));
  constexpr int64_t kRows = 16;
  for (int64_t i = 0; i < kRows; ++i) {
    ASSERT_TRUE(rel.Insert({Value::Int64(i),
                            Value::Interval(FixedInterval{i, i + 1})})
                    .ok());
  }
  constexpr size_t kCap = 4;
  // FT = [i, i+1) before [k, k+1) holds iff i + 1 <= k: exactly k rows.
  for (size_t k : {size_t{0}, size_t{1}, kCap, kCap + 1}) {
    PlanPtr plan = Filter(
        Scan(&rel, "R"),
        BeforeExpr(Col("FT"), Lit(Value::Interval(FixedInterval{
                                  static_cast<TimePoint>(k),
                                  static_cast<TimePoint>(k) + 1}))));
    for (size_t capacity : {size_t{1}, kCap}) {
      Result<PhysicalOpPtr> op = Compile(plan, ExecMode::kOngoing);
      ASSERT_TRUE(op.ok());
      EXPECT_EQ(plan_fuzz::DrainCountWithCapacity(**op, capacity), k)
          << "capacity " << capacity;
    }
  }
}

}  // namespace
}  // namespace ongoingdb
