// Tests of the index-nested-loop join (JoinAlgorithm::kIndexNL): the
// lowering (MatchIndexJoin eligibility, forced-path errors, the
// cost-based kAuto gate) and randomized equivalence — index-NL must
// produce the same tuple multiset as hash and scan-nested-loop joins
// and as the shared harness's reference evaluator, across
// overlaps/before/meets conjuncts in both orientations, ongoing + fixed
// interval columns, both execution modes, and workers 1/2/4 (shared
// harness: tests/testing/plan_fuzz.h; failures print their fuzz seed,
// replay with ONGOINGDB_TEST_SEED=<seed>). Also covers the inner-index
// cache across MaterializedView::Refresh() and the empty /
// all-overlapping inner edge cases.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "query/executor.h"
#include "query/materialized_view.h"
#include "query/optimizer.h"
#include "query/physical.h"
#include "relation/modifications.h"
#include "testing/plan_fuzz.h"
#include "util/rng.h"

namespace ongoingdb {
namespace {

using plan_fuzz::Fingerprint;
using plan_fuzz::ForcedParallel;
using plan_fuzz::FuzzSeeds;
using plan_fuzz::MakeMixedRelation;
using plan_fuzz::ReferenceExecute;
using plan_fuzz::ReferenceExecuteAt;

// A temporal join over the two mixed relations: outer column `oc` of A,
// inner column `ic` of B, conjunct orientation chosen by
// `outer_on_left`.
PlanPtr TemporalJoin(const OngoingRelation* outer, const OngoingRelation* inner,
                     AllenOp op, const std::string& outer_column,
                     const std::string& inner_column, bool outer_on_left,
                     JoinAlgorithm algorithm,
                     ExprPtr extra_conjunct = nullptr) {
  ExprPtr pred = outer_on_left
                     ? Allen(op, Col(outer_column), Col(inner_column))
                     : Allen(op, Col(inner_column), Col(outer_column));
  if (extra_conjunct != nullptr) pred = And(std::move(pred), extra_conjunct);
  return Join(Scan(outer, "A"), Scan(inner, "B"), std::move(pred), "L", "R",
              algorithm);
}

TEST(IndexJoinLoweringTest, EligibleTemporalJoinsLowerToIndexJoin) {
  OngoingRelation a = MakeMixedRelation(1, "A_", 16);
  OngoingRelation b = MakeMixedRelation(2, "B_", 16);
  for (AllenOp op : {AllenOp::kOverlaps, AllenOp::kBefore, AllenOp::kMeets}) {
    for (bool outer_on_left : {true, false}) {
      for (const char* inner_column : {"B_VT", "B_FT"}) {
        PlanPtr plan = TemporalJoin(&a, &b, op, "A_VT", inner_column,
                                    outer_on_left, JoinAlgorithm::kIndexNL);
        auto compiled = Compile(plan, ExecMode::kOngoing);
        ASSERT_TRUE(compiled.ok()) << compiled.status();
        EXPECT_STREQ((*compiled)->Name(), "IndexJoin")
            << "op=" << static_cast<int>(op)
            << " outer_on_left=" << outer_on_left
            << " inner_column=" << inner_column;
        auto compiled_at = Compile(plan, ExecMode::kAtReferenceTime, 50);
        ASSERT_TRUE(compiled_at.ok());
        EXPECT_STREQ((*compiled_at)->Name(), "IndexJoin");
      }
    }
  }
  // An equality conjunct riding along stays in the residual; the join is
  // still index-backed when forced.
  PlanPtr with_key = TemporalJoin(&a, &b, AllenOp::kOverlaps, "A_VT", "B_VT",
                                  true, JoinAlgorithm::kIndexNL,
                                  Eq(Col("A_ID"), Col("B_ID")));
  auto compiled = Compile(with_key, ExecMode::kOngoing);
  ASSERT_TRUE(compiled.ok());
  EXPECT_STREQ((*compiled)->Name(), "IndexJoin");
}

TEST(IndexJoinLoweringTest, ForcedIndexNLOnIneligibleJoinsIsACompileError) {
  OngoingRelation a = MakeMixedRelation(3, "A_", 16);
  OngoingRelation b = MakeMixedRelation(4, "B_", 16);
  // No temporal conjunct between the sides.
  PlanPtr equi_only = Join(Scan(&a, "A"), Scan(&b, "B"),
                           Eq(Col("A_ID"), Col("B_ID")), "L", "R",
                           JoinAlgorithm::kIndexNL);
  EXPECT_FALSE(Compile(equi_only, ExecMode::kOngoing).ok());
  EXPECT_FALSE(Execute(equi_only).ok());
  // An unsupported Allen operator.
  PlanPtr during = Join(Scan(&a, "A"), Scan(&b, "B"),
                        Allen(AllenOp::kDuring, Col("A_VT"), Col("B_VT")),
                        "L", "R", JoinAlgorithm::kIndexNL);
  EXPECT_FALSE(Compile(during, ExecMode::kOngoing).ok());
  // The inner (right) input must be a bare base-relation scan.
  PlanPtr filtered_inner =
      Join(Scan(&a, "A"),
           Filter(Scan(&b, "B"), Lt(Col("B_ID"), Lit(int64_t{8}))),
           OverlapsExpr(Col("A_VT"), Col("B_VT")), "L", "R",
           JoinAlgorithm::kIndexNL);
  EXPECT_FALSE(Compile(filtered_inner, ExecMode::kOngoing).ok());
  // Column-vs-literal temporal conjuncts belong to the selection
  // matcher, not the join matcher.
  PlanPtr vs_literal = Join(Scan(&a, "A"), Scan(&b, "B"),
                            OverlapsExpr(Col("A_VT"),
                                         Lit(OngoingInterval::Fixed(40, 60))),
                            "L", "R", JoinAlgorithm::kIndexNL);
  EXPECT_FALSE(Compile(vs_literal, ExecMode::kOngoing).ok());
}

TEST(IndexJoinLoweringTest, MakeJoinOpRejectsIndexNL) {
  OngoingRelation a = MakeMixedRelation(5, "A_", 8);
  OngoingRelation b = MakeMixedRelation(6, "B_", 8);
  auto op = MakeJoinOp(JoinAlgorithm::kIndexNL,
                       MakeScanOp(&a, ExecMode::kOngoing),
                       MakeScanOp(&b, ExecMode::kOngoing),
                       OverlapsExpr(Col("A_VT"), Col("B_VT")), "L", "R",
                       ExecMode::kOngoing);
  EXPECT_FALSE(op.ok());
}

class IndexJoinEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

// Index-NL == hash == scan-NL == reference: randomized over ops,
// orientations, interval columns, a residual equality conjunct, both
// modes, and workers 1/2/4. kAuto rides along — with histograms it must
// never pick a path that loses the forced-path equivalences.
TEST_P(IndexJoinEquivalenceTest, IndexNLMatchesHashAndScanNL) {
  const uint64_t seed = GetParam();
  ONGOINGDB_FUZZ_SEED_TRACE(seed);
  Rng rng(seed * 6151 + 3);
  OngoingRelation a = MakeMixedRelation(seed * 2 + 1, "A_", 60);
  OngoingRelation b = MakeMixedRelation(seed * 2 + 2, "B_", 60);
  for (int trial = 0; trial < 4; ++trial) {
    const AllenOp ops[] = {AllenOp::kOverlaps, AllenOp::kBefore,
                           AllenOp::kMeets};
    const AllenOp op = ops[rng.Uniform(0, 2)];
    const bool outer_on_left = rng.Bernoulli(0.5);
    const std::string outer_column = rng.Bernoulli(0.5) ? "A_VT" : "A_FT";
    const std::string inner_column = rng.Bernoulli(0.5) ? "B_VT" : "B_FT";
    ExprPtr extra = rng.Bernoulli(0.5) ? Eq(Col("A_ID"), Col("B_ID"))
                                       : nullptr;
    auto plan_with = [&](JoinAlgorithm algorithm) {
      return TemporalJoin(&a, &b, op, outer_column, inner_column,
                          outer_on_left, algorithm, extra);
    };

    auto reference = ReferenceExecute(plan_with(JoinAlgorithm::kAuto));
    ASSERT_TRUE(reference.ok()) << reference.status();
    const std::multiset<std::string> expected = Fingerprint(*reference);

    for (JoinAlgorithm algorithm :
         {JoinAlgorithm::kIndexNL, JoinAlgorithm::kNestedLoop,
          JoinAlgorithm::kHash, JoinAlgorithm::kAuto}) {
      PlanPtr plan = plan_with(algorithm);
      auto serial = Execute(plan);
      ASSERT_TRUE(serial.ok()) << serial.status();
      EXPECT_EQ(Fingerprint(*serial), expected)
          << "ongoing serial, algorithm " << static_cast<int>(algorithm)
          << " op=" << static_cast<int>(op)
          << " outer_on_left=" << outer_on_left;
      for (size_t workers : {size_t{2}, size_t{4}}) {
        auto parallel = Execute(plan, ForcedParallel(workers, 16));
        ASSERT_TRUE(parallel.ok()) << parallel.status();
        EXPECT_EQ(Fingerprint(*parallel), expected)
            << "ongoing workers=" << workers << ", algorithm "
            << static_cast<int>(algorithm);
      }
      for (TimePoint rt : {TimePoint{15}, TimePoint{140}}) {
        auto reference_at =
            ReferenceExecuteAt(plan_with(JoinAlgorithm::kAuto), rt);
        ASSERT_TRUE(reference_at.ok());
        auto at = ExecuteAtReferenceTime(plan, rt);
        ASSERT_TRUE(at.ok()) << at.status();
        EXPECT_EQ(Fingerprint(*at), Fingerprint(*reference_at))
            << "clifford rt=" << rt << ", algorithm "
            << static_cast<int>(algorithm);
        auto at_parallel =
            ExecuteAtReferenceTime(plan, rt, ForcedParallel(4, 16));
        ASSERT_TRUE(at_parallel.ok()) << at_parallel.status();
        EXPECT_EQ(Fingerprint(*at_parallel), Fingerprint(*reference_at))
            << "clifford parallel rt=" << rt << ", algorithm "
            << static_cast<int>(algorithm);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, IndexJoinEquivalenceTest,
                         ::testing::ValuesIn(FuzzSeeds(10)));

TEST(IndexJoinEdgeCaseTest, EmptyInnerAndEmptyOuter) {
  OngoingRelation a = MakeMixedRelation(11, "A_", 30);
  OngoingRelation b = MakeMixedRelation(12, "B_", 30);
  // Empty inner: the index is built over zero entries; every probe
  // returns no candidates.
  OngoingRelation empty_b(b.schema());
  PlanPtr empty_inner = Join(Scan(&a, "A"), Scan(&empty_b, "E"),
                             OverlapsExpr(Col("A_VT"), Col("B_VT")), "L", "R",
                             JoinAlgorithm::kIndexNL);
  auto r1 = Execute(empty_inner);
  ASSERT_TRUE(r1.ok()) << r1.status();
  EXPECT_EQ(r1->size(), 0u);
  auto r1p = Execute(empty_inner, ForcedParallel(4, 8));
  ASSERT_TRUE(r1p.ok());
  EXPECT_EQ(r1p->size(), 0u);
  // Empty outer: the probe loop never runs.
  OngoingRelation empty_a(a.schema());
  PlanPtr empty_outer = Join(Scan(&empty_a, "E"), Scan(&b, "B"),
                             OverlapsExpr(Col("A_VT"), Col("B_VT")), "L", "R",
                             JoinAlgorithm::kIndexNL);
  auto r2 = Execute(empty_outer);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->size(), 0u);
}

TEST(IndexJoinEdgeCaseTest, AllOverlappingInnerDegeneratesToNestedLoop) {
  // Every inner interval overlaps everything (open since 0): the
  // candidate list is the whole inner side per probe — the index prunes
  // nothing and must still match the scan-NL result exactly.
  OngoingRelation a = MakeMixedRelation(13, "A_", 40);
  OngoingRelation b(Schema({{"B_ID", ValueType::kInt64},
                            {"B_VT", ValueType::kOngoingInterval}}));
  for (int64_t i = 0; i < 40; ++i) {
    ASSERT_TRUE(b.Insert({Value::Int64(i),
                          Value::Ongoing(OngoingInterval::SinceUntilNow(0))})
                    .ok());
  }
  PlanPtr indexed = Join(Scan(&a, "A"), Scan(&b, "B"),
                         OverlapsExpr(Col("A_VT"), Col("B_VT")), "L", "R",
                         JoinAlgorithm::kIndexNL);
  PlanPtr scanned = Join(Scan(&a, "A"), Scan(&b, "B"),
                         OverlapsExpr(Col("A_VT"), Col("B_VT")), "L", "R",
                         JoinAlgorithm::kNestedLoop);
  auto want = Execute(scanned);
  ASSERT_TRUE(want.ok());
  auto got = Execute(indexed);
  ASSERT_TRUE(got.ok());
  EXPECT_GT(got->size(), 0u);
  EXPECT_EQ(Fingerprint(*got), Fingerprint(*want));
  auto got_parallel = Execute(indexed, ForcedParallel(4, 8));
  ASSERT_TRUE(got_parallel.ok());
  EXPECT_EQ(Fingerprint(*got_parallel), Fingerprint(*want));
}

// MaterializedView: the inner index cached inside the compiled tree is
// reused across Refresh() and rebuilt when base-data modifications
// change the indexed inner column — including size-preserving in-place
// valid-time closes.
TEST(IndexJoinMaterializedViewTest, RefreshRebuildsStaleInnerIndex) {
  OngoingRelation a(Schema({{"A_ID", ValueType::kInt64},
                            {"A_VT", ValueType::kOngoingInterval}}));
  for (int64_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(
        a.Insert({Value::Int64(i),
                  Value::Ongoing(OngoingInterval::Fixed(100 + i, 140 + i))})
            .ok());
  }
  OngoingRelation b(Schema({{"B_ID", ValueType::kInt64},
                            {"B_VT", ValueType::kOngoingInterval}}));
  for (int64_t i = 0; i < 40; ++i) {
    ASSERT_TRUE(b.Insert({Value::Int64(i),
                          Value::Ongoing(OngoingInterval::SinceUntilNow(i))})
                    .ok());
  }
  PlanPtr indexed = Join(Scan(&a, "A"), Scan(&b, "B"),
                         BeforeExpr(Col("B_VT"), Col("A_VT")), "L", "R",
                         JoinAlgorithm::kIndexNL);
  PlanPtr scanned = Join(Scan(&a, "A"), Scan(&b, "B"),
                         BeforeExpr(Col("B_VT"), Col("A_VT")), "L", "R",
                         JoinAlgorithm::kNestedLoop);
  auto view = MaterializedView::Create(indexed);
  ASSERT_TRUE(view.ok());
  auto expected0 = Execute(scanned);
  ASSERT_TRUE(expected0.ok());
  EXPECT_EQ(Fingerprint(view->ongoing_result()), Fingerprint(*expected0));

  // A refresh without modifications reuses the cached inner index.
  ASSERT_TRUE(view->Refresh().ok());
  EXPECT_EQ(Fingerprint(view->ongoing_result()), Fingerprint(*expected0));

  // Close half the inner tuples at tc = 50: their VT becomes [i, 50) —
  // now before every outer interval; an in-place, size-preserving
  // change the fingerprint must catch.
  auto deleted = TemporalDelete(&b, 1, 50, [](const Tuple& t) {
    return t.value(0).AsInt64() < 20;
  });
  ASSERT_TRUE(deleted.ok());
  ASSERT_EQ(b.size(), 40u);
  ASSERT_TRUE(view->Refresh().ok());
  auto expected1 = Execute(scanned);
  ASSERT_TRUE(expected1.ok());
  EXPECT_EQ(Fingerprint(view->ongoing_result()), Fingerprint(*expected1));
  EXPECT_NE(Fingerprint(*expected1), Fingerprint(*expected0));

  // Appending inner tuples is detected as well.
  ASSERT_TRUE(b.Insert({Value::Int64(40),
                        Value::Ongoing(OngoingInterval::Fixed(0, 10))})
                  .ok());
  ASSERT_TRUE(view->Refresh().ok());
  auto expected2 = Execute(scanned);
  ASSERT_TRUE(expected2.ok());
  EXPECT_EQ(Fingerprint(view->ongoing_result()), Fingerprint(*expected2));
}

// Re-opening the same compiled tree must reset the outer stream and the
// suspended candidate cursor.
TEST(IndexJoinBatchBoundaryTest, ReopenProducesTheSameResult) {
  OngoingRelation a = MakeMixedRelation(17, "A_", 50);
  OngoingRelation b = MakeMixedRelation(18, "B_", 50);
  PlanPtr plan = TemporalJoin(&a, &b, AllenOp::kOverlaps, "A_VT", "B_VT",
                              true, JoinAlgorithm::kIndexNL);
  auto compiled = Compile(plan, ExecMode::kOngoing);
  ASSERT_TRUE(compiled.ok());
  auto first = DrainToRelation(**compiled);
  ASSERT_TRUE(first.ok());
  auto second = DrainToRelation(**compiled);
  ASSERT_TRUE(second.ok());
  EXPECT_GT(first->size(), 0u);
  EXPECT_EQ(Fingerprint(*first), Fingerprint(*second));
}

// Batch capacity 1 forces suspension after every emitted tuple,
// mid-candidate-list; the drain protocol must still hold.
TEST(IndexJoinBatchBoundaryTest, SuspendsAndResumesAtTinyCapacities) {
  OngoingRelation a = MakeMixedRelation(19, "A_", 30);
  OngoingRelation b = MakeMixedRelation(20, "B_", 30);
  PlanPtr indexed = TemporalJoin(&a, &b, AllenOp::kOverlaps, "A_VT", "B_VT",
                                 true, JoinAlgorithm::kIndexNL);
  PlanPtr scanned = TemporalJoin(&a, &b, AllenOp::kOverlaps, "A_VT", "B_VT",
                                 true, JoinAlgorithm::kNestedLoop);
  auto want = Execute(scanned);
  ASSERT_TRUE(want.ok());
  ASSERT_GT(want->size(), 0u);
  for (size_t capacity : {size_t{1}, size_t{3}, size_t{64}}) {
    auto op = Compile(indexed, ExecMode::kOngoing);
    ASSERT_TRUE(op.ok());
    EXPECT_EQ(plan_fuzz::DrainCountWithCapacity(**op, capacity), want->size())
        << "capacity " << capacity;
  }
}

}  // namespace
}  // namespace ongoingdb
