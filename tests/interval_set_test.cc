// Unit tests for IntervalSet: normalization, membership, and the
// sweep-line set algebra (Algorithm 1 of the paper).
#include "core/interval_set.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace ongoingdb {
namespace {

TEST(IntervalSetTest, EmptyAndAll) {
  EXPECT_TRUE(IntervalSet::Empty().IsEmpty());
  EXPECT_TRUE(IntervalSet::All().IsAll());
  EXPECT_FALSE(IntervalSet::All().IsEmpty());
  EXPECT_FALSE(IntervalSet::Empty().IsAll());
}

TEST(IntervalSetTest, FromUnsortedNormalizes) {
  IntervalSet s = IntervalSet::FromUnsorted(
      {{10, 20}, {5, 8}, {18, 25}, {30, 30}, {26, 28}});
  // {5,8} stays; {10,20} and {18,25} merge; {30,30} is empty and dropped.
  ASSERT_EQ(s.IntervalCount(), 3u);
  EXPECT_EQ(s.intervals()[0], (FixedInterval{5, 8}));
  EXPECT_EQ(s.intervals()[1], (FixedInterval{10, 25}));
  EXPECT_EQ(s.intervals()[2], (FixedInterval{26, 28}));
}

TEST(IntervalSetTest, FromUnsortedMergesAdjacent) {
  // Adjacent intervals [0,5) and [5,9) represent a contiguous point set
  // and must be merged for maximality.
  IntervalSet s = IntervalSet::FromUnsorted({{0, 5}, {5, 9}});
  ASSERT_EQ(s.IntervalCount(), 1u);
  EXPECT_EQ(s.intervals()[0], (FixedInterval{0, 9}));
}

TEST(IntervalSetTest, Contains) {
  IntervalSet s{{0, 10}, {20, 30}};
  EXPECT_TRUE(s.Contains(0));
  EXPECT_TRUE(s.Contains(9));
  EXPECT_FALSE(s.Contains(10));
  EXPECT_FALSE(s.Contains(15));
  EXPECT_TRUE(s.Contains(20));
  EXPECT_FALSE(s.Contains(30));
  EXPECT_FALSE(s.Contains(-5));
}

TEST(IntervalSetTest, PointSet) {
  IntervalSet p = IntervalSet::Point(42);
  EXPECT_TRUE(p.Contains(42));
  EXPECT_FALSE(p.Contains(41));
  EXPECT_FALSE(p.Contains(43));
  EXPECT_EQ(p.CountPoints(), 1);
}

TEST(IntervalSetTest, IntersectBasic) {
  IntervalSet a{{0, 10}, {20, 30}};
  IntervalSet b{{5, 25}};
  IntervalSet expect{{5, 10}, {20, 25}};
  EXPECT_EQ(a.Intersect(b), expect);
  EXPECT_EQ(b.Intersect(a), expect);  // commutative
}

TEST(IntervalSetTest, IntersectDisjoint) {
  IntervalSet a{{0, 10}};
  IntervalSet b{{10, 20}};  // adjacent but half-open: no shared point
  EXPECT_TRUE(a.Intersect(b).IsEmpty());
  EXPECT_FALSE(a.Intersects(b));
}

TEST(IntervalSetTest, IntersectWithAllIsIdentity) {
  IntervalSet a{{3, 7}, {11, 13}};
  EXPECT_EQ(a.Intersect(IntervalSet::All()), a);
  EXPECT_EQ(IntervalSet::All().Intersect(a), a);
  EXPECT_TRUE(a.Intersect(IntervalSet::Empty()).IsEmpty());
}

TEST(IntervalSetTest, UnionBasic) {
  IntervalSet a{{0, 10}};
  IntervalSet b{{5, 15}, {20, 25}};
  IntervalSet expect{{0, 15}, {20, 25}};
  EXPECT_EQ(a.Union(b), expect);
  EXPECT_EQ(b.Union(a), expect);
}

TEST(IntervalSetTest, UnionCoalescesAdjacent) {
  IntervalSet a{{0, 10}};
  IntervalSet b{{10, 20}};
  IntervalSet u = a.Union(b);
  ASSERT_EQ(u.IntervalCount(), 1u);
  EXPECT_EQ(u.intervals()[0], (FixedInterval{0, 20}));
}

TEST(IntervalSetTest, ComplementOfEmptyIsAll) {
  EXPECT_TRUE(IntervalSet::Empty().Complement().IsAll());
  EXPECT_TRUE(IntervalSet::All().Complement().IsEmpty());
}

TEST(IntervalSetTest, ComplementInterior) {
  IntervalSet s{{10, 20}};
  IntervalSet c = s.Complement();
  ASSERT_EQ(c.IntervalCount(), 2u);
  EXPECT_EQ(c.intervals()[0], (FixedInterval{kMinInfinity, 10}));
  EXPECT_EQ(c.intervals()[1], (FixedInterval{20, kMaxInfinity}));
  EXPECT_EQ(c.Complement(), s);  // involution
}

TEST(IntervalSetTest, Difference) {
  IntervalSet a{{0, 30}};
  IntervalSet b{{10, 20}};
  IntervalSet expect{{0, 10}, {20, 30}};
  EXPECT_EQ(a.Difference(b), expect);
  EXPECT_TRUE(b.Difference(a).IsEmpty());
}

TEST(IntervalSetTest, CountPointsSaturatesAtInfinity) {
  EXPECT_EQ(IntervalSet::All().CountPoints(), kMaxInfinity);
  EXPECT_EQ((IntervalSet{{0, 10}, {20, 25}}).CountPoints(), 15);
  EXPECT_EQ(IntervalSet::Empty().CountPoints(), 0);
}

TEST(IntervalSetTest, ToString) {
  EXPECT_EQ(IntervalSet::Empty().ToString(), "{}");
  EXPECT_EQ(IntervalSet::All().ToString(), "{(-inf, +inf)}");
  IntervalSet s{{MD(1, 26), MD(8, 16)}};
  EXPECT_EQ(s.ToString(), "{[01/26, 08/16)}");
}

// ---------------------------------------------------------------------------
// Property tests: the sweep-line algebra must agree with pointwise set
// semantics on randomized inputs, and results must stay normalized.
// ---------------------------------------------------------------------------

class IntervalSetPropertyTest : public ::testing::TestWithParam<uint64_t> {};

IntervalSet RandomSet(Rng& rng) {
  std::vector<FixedInterval> ivs;
  const int n = static_cast<int>(rng.Uniform(0, 6));
  for (int i = 0; i < n; ++i) {
    TimePoint s = rng.Uniform(-50, 50);
    TimePoint e = s + rng.Uniform(0, 20);
    ivs.push_back({s, e});
  }
  return IntervalSet::FromUnsorted(std::move(ivs));
}

void ExpectNormalized(const IntervalSet& s) {
  const auto& ivs = s.intervals();
  for (size_t i = 0; i < ivs.size(); ++i) {
    EXPECT_LT(ivs[i].start, ivs[i].end) << "empty interval in " << s.ToString();
    if (i > 0) {
      EXPECT_LT(ivs[i - 1].end, ivs[i].start)
          << "not disjoint+maximal: " << s.ToString();
    }
  }
}

TEST_P(IntervalSetPropertyTest, AlgebraMatchesPointwiseSemantics) {
  Rng rng(GetParam());
  IntervalSet a = RandomSet(rng);
  IntervalSet b = RandomSet(rng);
  IntervalSet inter = a.Intersect(b);
  IntervalSet uni = a.Union(b);
  IntervalSet diff = a.Difference(b);
  IntervalSet comp = a.Complement();
  ExpectNormalized(inter);
  ExpectNormalized(uni);
  ExpectNormalized(diff);
  ExpectNormalized(comp);
  EXPECT_EQ(a.Intersects(b), !inter.IsEmpty());
  for (TimePoint t = -80; t <= 80; ++t) {
    const bool in_a = a.Contains(t);
    const bool in_b = b.Contains(t);
    EXPECT_EQ(inter.Contains(t), in_a && in_b) << "t=" << t;
    EXPECT_EQ(uni.Contains(t), in_a || in_b) << "t=" << t;
    EXPECT_EQ(diff.Contains(t), in_a && !in_b) << "t=" << t;
    EXPECT_EQ(comp.Contains(t), !in_a) << "t=" << t;
  }
}

TEST_P(IntervalSetPropertyTest, AlgebraicLaws) {
  Rng rng(GetParam() * 7919 + 13);
  IntervalSet a = RandomSet(rng);
  IntervalSet b = RandomSet(rng);
  IntervalSet c = RandomSet(rng);
  // De Morgan.
  EXPECT_EQ(a.Intersect(b).Complement(),
            a.Complement().Union(b.Complement()));
  EXPECT_EQ(a.Union(b).Complement(),
            a.Complement().Intersect(b.Complement()));
  // Distributivity.
  EXPECT_EQ(a.Intersect(b.Union(c)),
            a.Intersect(b).Union(a.Intersect(c)));
  // Associativity and commutativity.
  EXPECT_EQ(a.Union(b).Union(c), a.Union(b.Union(c)));
  EXPECT_EQ(a.Intersect(b), b.Intersect(a));
  // Idempotence and involution.
  EXPECT_EQ(a.Union(a), a);
  EXPECT_EQ(a.Intersect(a), a);
  EXPECT_EQ(a.Complement().Complement(), a);
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, IntervalSetPropertyTest,
                         ::testing::Range<uint64_t>(0, 50));

}  // namespace
}  // namespace ongoingdb
