// Fixture: a physical operator whose Next neither calls CheckLifecycle
// nor delegates to a NextBatch that does. The linter's next-lifecycle
// rule must flag RogueOp::Next and accept DelegatingOp::Next.
#include "query/physical.h"

namespace ongoingdb {
namespace {

class RogueOp final : public PhysicalOperator {
 public:
  Status Next(TupleBatch* out) override {
    out->Clear();
    return Status::OK();
  }
};

class DelegatingOp final : public PhysicalOperator {
 public:
  Status Next(TupleBatch* out) override { return NextBatch(out); }

 private:
  Status NextBatch(TupleBatch* out) {
    ONGOINGDB_RETURN_NOT_OK(CheckLifecycle(ctx_, fp_exec_next));
    out->Clear();
    return Status::OK();
  }
};

}  // namespace
}  // namespace ongoingdb
