// Fixture: raw owning new/delete outside the allowlist. The linter's
// raw-new rule must flag the first two and honor the suppression on the
// third; the placement-new and deleted-function idioms must not fire.
#include <new>

namespace ongoingdb {
namespace {

struct NonCopyable {
  NonCopyable(const NonCopyable&) = delete;
  NonCopyable& operator=(const NonCopyable&) = delete;
};

void Leak() {
  int* p = new int(7);  // finding 1
  delete p;             // finding 2
  // lint:allow raw-new: fixture exercises the suppression mechanism.
  int* suppressed = new int(8);
  (void)suppressed;
  alignas(int) unsigned char buf[sizeof(int)];
  int* placed = ::new (static_cast<void*>(buf)) int(9);  // not a finding
  (void)placed;
}

}  // namespace
}  // namespace ongoingdb
