// Fixture: plants a failpoint whose name is absent from the fixture's
// docs/DESIGN.md table. The linter's failpoint-table rule must flag it.
#include "util/failpoint.h"

namespace ongoingdb {
namespace {

Failpoint& fp_documented = Failpoint::GetOrCreate("exec.open");
Failpoint& fp_bogus = Failpoint::GetOrCreate("bogus.site");

}  // namespace
}  // namespace ongoingdb
