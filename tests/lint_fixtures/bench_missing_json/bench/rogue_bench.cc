// Fixture: a bench suite that never registers with the JSON results
// writer and carries no allow comment. The linter's bench-json rule
// must flag it.
int main() { return 0; }
