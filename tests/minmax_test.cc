// Tests for min/max on ongoing time points: the Theorem 1 equivalences,
// closure of Omega (Table I), and snapshot equivalence.
#include <gtest/gtest.h>

#include "core/operations.h"

namespace ongoingdb {
namespace {

TEST(MinMaxTest, PaperExample1) {
  // min(10/17, now) = +10/17 (Example 1 / Fig. 5).
  OngoingTimePoint result =
      Min(OngoingTimePoint::Fixed(MD(10, 17)), OngoingTimePoint::Now());
  EXPECT_EQ(result, OngoingTimePoint::Limited(MD(10, 17)));
  EXPECT_TRUE(result.IsLimited());
  // Fig. 5 checks: at 10/15 it equals 10/15; at 10/19 it equals 10/17.
  EXPECT_EQ(result.Instantiate(MD(10, 15)), MD(10, 15));
  EXPECT_EQ(result.Instantiate(MD(10, 19)), MD(10, 17));
}

TEST(MinMaxTest, MaxOfFixedAndNowIsGrowing) {
  // max(a, now) = a+ — Torp et al.'s growing time point expressed in
  // Omega.
  OngoingTimePoint result =
      Max(OngoingTimePoint::Fixed(MD(10, 17)), OngoingTimePoint::Now());
  EXPECT_EQ(result, OngoingTimePoint::Growing(MD(10, 17)));
}

TEST(MinMaxTest, ComponentwiseEquivalence) {
  // min(a+b, c+d) = min(a,c)+min(b,d), max likewise.
  OngoingTimePoint t1(2, 9), t2(4, 7);
  EXPECT_EQ(Min(t1, t2), OngoingTimePoint(2, 7));
  EXPECT_EQ(Max(t1, t2), OngoingTimePoint(4, 9));
}

TEST(MinMaxTest, OmegaIsClosedUnderMinAndMax) {
  // Table I: Omega is closed — the componentwise result always satisfies
  // a <= b. Exhaustive over a dense grid.
  const TimePoint lo = -4, hi = 5;
  for (TimePoint a = lo; a <= hi; ++a) {
    for (TimePoint b = a; b <= hi; ++b) {
      for (TimePoint c = lo; c <= hi; ++c) {
        for (TimePoint d = c; d <= hi; ++d) {
          OngoingTimePoint t1(a, b), t2(c, d);
          OngoingTimePoint mn = Min(t1, t2);
          OngoingTimePoint mx = Max(t1, t2);
          EXPECT_LE(mn.a(), mn.b());
          EXPECT_LE(mx.a(), mx.b());
        }
      }
    }
  }
}

TEST(MinMaxTest, SnapshotEquivalenceExhaustive) {
  // Def. 4: forall rt ||min(t1,t2)||rt = min(||t1||rt, ||t2||rt).
  const TimePoint lo = -4, hi = 5;
  for (TimePoint a = lo; a <= hi; ++a) {
    for (TimePoint b = a; b <= hi; ++b) {
      for (TimePoint c = lo; c <= hi; ++c) {
        for (TimePoint d = c; d <= hi; ++d) {
          OngoingTimePoint t1(a, b), t2(c, d);
          OngoingTimePoint mn = Min(t1, t2);
          OngoingTimePoint mx = Max(t1, t2);
          for (TimePoint rt = lo - 2; rt <= hi + 2; ++rt) {
            EXPECT_EQ(mn.Instantiate(rt),
                      std::min(t1.Instantiate(rt), t2.Instantiate(rt)));
            EXPECT_EQ(mx.Instantiate(rt),
                      std::max(t1.Instantiate(rt), t2.Instantiate(rt)));
          }
        }
      }
    }
  }
}

TEST(MinMaxTest, AlgebraicLaws) {
  OngoingTimePoint x(1, 8), y(3, 5), z(0, 9);
  EXPECT_EQ(Min(x, y), Min(y, x));
  EXPECT_EQ(Max(x, y), Max(y, x));
  EXPECT_EQ(Min(Min(x, y), z), Min(x, Min(y, z)));
  EXPECT_EQ(Max(Max(x, y), z), Max(x, Max(y, z)));
  EXPECT_EQ(Min(x, x), x);
  EXPECT_EQ(Max(x, x), x);
  // Absorption: min(x, max(x, y)) = x.
  EXPECT_EQ(Min(x, Max(x, y)), x);
  EXPECT_EQ(Max(x, Min(x, y)), x);
}

TEST(MinMaxTest, TorpCounterexampleIsClosedInOmega) {
  // Tnow = T u {now} is not closed: min(10/17, now) is neither fixed nor
  // now. In Omega the result is representable (+10/17) — verified by
  // construction here.
  OngoingTimePoint result =
      Min(OngoingTimePoint::Fixed(MD(10, 17)), OngoingTimePoint::Now());
  EXPECT_FALSE(result.IsFixed());
  EXPECT_FALSE(result.IsNow());
  // And nesting stays inside Omega: max(min(a, now), c).
  OngoingTimePoint nested = Max(result, OngoingTimePoint::Fixed(MD(10, 12)));
  EXPECT_LE(nested.a(), nested.b());
  for (TimePoint rt = MD(10, 1); rt <= MD(11, 1); ++rt) {
    TimePoint expect = std::max(
        std::min(MD(10, 17), rt), MD(10, 12));
    EXPECT_EQ(nested.Instantiate(rt), expect);
  }
}

}  // namespace
}  // namespace ongoingdb
