// Tests of the index-backed temporal selection in the batched/parallel
// pipeline: Compile() must lower eligible Filter(Scan) plans to
// IndexScanOp (and respect forced access paths), and the index path
// must be equivalent to the full-scan filter — randomized over
// overlaps/before/meets probes in both orientations plus timeslice
// CONTAINS points, ongoing + fixed + mixed interval columns, serial and
// parallel drains, and both execution modes (shared harness:
// tests/testing/plan_fuzz.h; failures print their fuzz seed, replay
// with ONGOINGDB_TEST_SEED=<seed>). Also covers the MaterializedView
// contract: the index is cached inside the compiled tree across
// Refresh() and rebuilt when base-data modifications change the indexed
// column.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "query/executor.h"
#include "query/materialized_view.h"
#include "query/optimizer.h"
#include "query/physical.h"
#include "relation/modifications.h"
#include "testing/plan_fuzz.h"
#include "util/rng.h"

namespace ongoingdb {
namespace {

using plan_fuzz::Fingerprint;
using plan_fuzz::ForcedParallel;
using plan_fuzz::FuzzSeeds;
using plan_fuzz::MakeMixedRelation;

PlanPtr ProbePlan(const OngoingRelation* r, AllenOp op,
                  const std::string& column, FixedInterval probe,
                  AccessPath path, ExprPtr extra_conjunct = nullptr,
                  bool literal_on_left = false) {
  ExprPtr lit = Lit(OngoingInterval::Fixed(probe.start, probe.end));
  ExprPtr pred = literal_on_left ? Allen(op, std::move(lit), Col(column))
                                 : Allen(op, Col(column), std::move(lit));
  if (extra_conjunct != nullptr) pred = And(std::move(pred), extra_conjunct);
  return Filter(Scan(r, "R"), std::move(pred), path);
}

TEST(IndexScanLoweringTest, EligibleFilterScanLowersToIndexScan) {
  OngoingRelation r = MakeMixedRelation(1, "", 16);
  for (AllenOp op : {AllenOp::kOverlaps, AllenOp::kBefore, AllenOp::kMeets}) {
    for (const char* column : {"VT", "FT"}) {
      for (bool literal_on_left : {false, true}) {
        PlanPtr plan =
            ProbePlan(&r, op, column, FixedInterval{40, 60}, AccessPath::kAuto,
                      nullptr, literal_on_left);
        auto compiled = Compile(plan, ExecMode::kOngoing);
        ASSERT_TRUE(compiled.ok());
        EXPECT_STREQ((*compiled)->Name(), "IndexScan")
            << "op=" << static_cast<int>(op) << " column=" << column
            << " literal_on_left=" << literal_on_left;
        auto compiled_at = Compile(plan, ExecMode::kAtReferenceTime, 50);
        ASSERT_TRUE(compiled_at.ok());
        EXPECT_STREQ((*compiled_at)->Name(), "IndexScan");
      }
    }
  }
  // A residual conjunct rides along: the filter is still index-backed.
  PlanPtr with_residual =
      ProbePlan(&r, AllenOp::kOverlaps, "VT", FixedInterval{40, 60},
                AccessPath::kAuto, Lt(Col("ID"), Lit(int64_t{8})));
  auto compiled = Compile(with_residual, ExecMode::kOngoing);
  ASSERT_TRUE(compiled.ok());
  EXPECT_STREQ((*compiled)->Name(), "IndexScan");
  // Timeslice probes: column CONTAINS a fixed time point is eligible in
  // both point representations.
  for (const Value& point :
       {Value::Time(50), Value::Ongoing(OngoingTimePoint(50, 50))}) {
    PlanPtr contains =
        Filter(Scan(&r, "R"), ContainsExpr(Col("VT"), Lit(point)));
    auto compiled_contains = Compile(contains, ExecMode::kOngoing);
    ASSERT_TRUE(compiled_contains.ok());
    EXPECT_STREQ((*compiled_contains)->Name(), "IndexScan");
  }
}

TEST(IndexScanLoweringTest, IneligiblePredicatesKeepTheFilterLowering) {
  OngoingRelation r = MakeMixedRelation(2, "", 16);
  // Not an Allen probe at all.
  PlanPtr fixed_only = Filter(Scan(&r, "R"), Lt(Col("ID"), Lit(int64_t{8})));
  auto c1 = Compile(fixed_only, ExecMode::kOngoing);
  ASSERT_TRUE(c1.ok());
  EXPECT_STREQ((*c1)->Name(), "Filter");
  // An unsupported Allen operator.
  PlanPtr during = Filter(Scan(&r, "R"),
                          Allen(AllenOp::kDuring, Col("VT"),
                                Lit(OngoingInterval::Fixed(40, 60))));
  auto c2 = Compile(during, ExecMode::kOngoing);
  ASSERT_TRUE(c2.ok());
  EXPECT_STREQ((*c2)->Name(), "Filter");
  // A probe that is not fixed at every reference time.
  PlanPtr ongoing_probe =
      Filter(Scan(&r, "R"),
             OverlapsExpr(Col("VT"), Lit(OngoingInterval::SinceUntilNow(40))));
  auto c3 = Compile(ongoing_probe, ExecMode::kOngoing);
  ASSERT_TRUE(c3.ok());
  EXPECT_STREQ((*c3)->Name(), "Filter");
  // Column-vs-column predicates have no fixed probe.
  PlanPtr col_col = Filter(Scan(&r, "R"), OverlapsExpr(Col("VT"), Col("FT")));
  auto c4 = Compile(col_col, ExecMode::kOngoing);
  ASSERT_TRUE(c4.ok());
  EXPECT_STREQ((*c4)->Name(), "Filter");
  // A CONTAINS against an ongoing point with spread bounds (depends on
  // the reference time) is no timeslice probe.
  PlanPtr spread_point = Filter(
      Scan(&r, "R"), ContainsExpr(Col("VT"), Lit(OngoingTimePoint(40, 60))));
  auto c5 = Compile(spread_point, ExecMode::kOngoing);
  ASSERT_TRUE(c5.ok());
  EXPECT_STREQ((*c5)->Name(), "Filter");
}

TEST(IndexScanLoweringTest, ForcedAccessPathsAreRespected) {
  OngoingRelation r = MakeMixedRelation(3, "", 16);
  PlanPtr forced_scan = ProbePlan(&r, AllenOp::kOverlaps, "VT",
                                  FixedInterval{40, 60}, AccessPath::kFullScan);
  auto c1 = Compile(forced_scan, ExecMode::kOngoing);
  ASSERT_TRUE(c1.ok());
  EXPECT_STREQ((*c1)->Name(), "Filter");

  PlanPtr forced_index = ProbePlan(&r, AllenOp::kBefore, "VT",
                                   FixedInterval{40, 60}, AccessPath::kIndex);
  auto c2 = Compile(forced_index, ExecMode::kOngoing);
  ASSERT_TRUE(c2.ok());
  EXPECT_STREQ((*c2)->Name(), "IndexScan");

  // Forcing the index on an ineligible predicate is a compile error.
  PlanPtr bad = Filter(Scan(&r, "R"), Lt(Col("ID"), Lit(int64_t{3})),
                       AccessPath::kIndex);
  EXPECT_FALSE(Compile(bad, ExecMode::kOngoing).ok());
  EXPECT_FALSE(Execute(bad).ok());
}

// The optimizer's rewrites preserve the access-path annotation.
TEST(IndexScanLoweringTest, OptimizePreservesAccessPath) {
  OngoingRelation r = MakeMixedRelation(4, "", 16);
  PlanPtr plan = ProbePlan(&r, AllenOp::kOverlaps, "VT", FixedInterval{40, 60},
                           AccessPath::kFullScan);
  auto optimized = Optimize(plan);
  ASSERT_TRUE(optimized.ok());
  auto compiled = Compile(*optimized, ExecMode::kOngoing);
  ASSERT_TRUE(compiled.ok());
  EXPECT_STREQ((*compiled)->Name(), "Filter");
}

// Pushing a forced-kFullScan filter's conjuncts below a join must keep
// the annotation on the pushed filter — otherwise the ablation baseline
// silently reverts to kAuto (and thus the index) after pushdown.
TEST(IndexScanLoweringTest, PushDownPreservesAccessPathOnPushedFilters) {
  OngoingRelation r = MakeMixedRelation(5, "", 16);
  OngoingRelation s = MakeMixedRelation(6, "", 16);
  PlanPtr plan = Filter(
      Join(Scan(&r, "A"), Scan(&s, "B"), Eq(Col("L.ID"), Col("R.ID")), "L",
           "R"),
      OverlapsExpr(Col("L.VT"), Lit(OngoingInterval::Fixed(40, 60))),
      AccessPath::kFullScan);
  auto pushed = PushDownFilters(plan);
  ASSERT_TRUE(pushed.ok());
  ASSERT_EQ((*pushed)->kind(), PlanKind::kJoin);
  const auto* join = static_cast<const JoinNode*>(pushed->get());
  ASSERT_EQ(join->left()->kind(), PlanKind::kFilter);
  const auto* pushed_filter =
      static_cast<const FilterNode*>(join->left().get());
  EXPECT_EQ(pushed_filter->access_path(), AccessPath::kFullScan);
  auto compiled = Compile(join->left(), ExecMode::kOngoing);
  ASSERT_TRUE(compiled.ok());
  EXPECT_STREQ((*compiled)->Name(), "Filter");
}

class IndexScanEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

// Index-backed selection == full-scan selection: randomized probes over
// all eligible predicates (overlaps/before/meets, both orientations,
// plus CONTAINS timeslice points) and both interval columns, with and
// without a fixed residual conjunct, in both execution modes, serial
// and parallel.
TEST_P(IndexScanEquivalenceTest, IndexPathMatchesFullScan) {
  const uint64_t seed = GetParam();
  ONGOINGDB_FUZZ_SEED_TRACE(seed);
  OngoingRelation r = MakeMixedRelation(seed, "", 300);
  Rng rng(seed + 100);
  for (int probe_i = 0; probe_i < 6; ++probe_i) {
    const std::string column = rng.Bernoulli(0.5) ? "VT" : "FT";
    TimePoint s = rng.Uniform(0, 120);
    const FixedInterval probe{s, s + rng.Uniform(1, 50)};
    ExprPtr residual = rng.Bernoulli(0.5)
                           ? Lt(Col("ID"), Lit(rng.Uniform(0, 300)))
                           : nullptr;
    PlanPtr indexed, scanned;
    if (rng.Bernoulli(0.2)) {
      // Timeslice probe: VT CONTAINS s.
      ExprPtr make_contains = ContainsExpr(Col(column), Lit(Value::Time(s)));
      ExprPtr pred = residual != nullptr
                         ? And(make_contains, residual)
                         : make_contains;
      indexed = Filter(Scan(&r, "R"), pred, AccessPath::kIndex);
      scanned = Filter(Scan(&r, "R"), pred, AccessPath::kFullScan);
    } else {
      const AllenOp ops[] = {AllenOp::kOverlaps, AllenOp::kBefore,
                             AllenOp::kMeets};
      const AllenOp op = ops[rng.Uniform(0, 2)];
      const bool literal_on_left = rng.Bernoulli(0.5);
      indexed = ProbePlan(&r, op, column, probe, AccessPath::kIndex, residual,
                          literal_on_left);
      scanned = ProbePlan(&r, op, column, probe, AccessPath::kFullScan,
                          residual, literal_on_left);
    }

    auto scan_result = Execute(scanned);
    ASSERT_TRUE(scan_result.ok());
    const std::multiset<std::string> expected = Fingerprint(*scan_result);

    auto index_result = Execute(indexed);
    ASSERT_TRUE(index_result.ok());
    EXPECT_EQ(Fingerprint(*index_result), expected)
        << "serial, probe " << probe_i << " column=" << column;

    for (size_t workers : {2u, 4u}) {
      auto parallel_result = Execute(indexed, ForcedParallel(workers, 64));
      ASSERT_TRUE(parallel_result.ok());
      EXPECT_EQ(Fingerprint(*parallel_result), expected)
          << "workers=" << workers;
    }

    // Clifford semantics at sampled reference times.
    for (TimePoint rt : {TimePoint{-10}, TimePoint{25}, TimePoint{80},
                         TimePoint{160}}) {
      auto scan_at = ExecuteAtReferenceTime(scanned, rt);
      ASSERT_TRUE(scan_at.ok());
      auto index_at = ExecuteAtReferenceTime(indexed, rt);
      ASSERT_TRUE(index_at.ok());
      EXPECT_EQ(Fingerprint(*index_at), Fingerprint(*scan_at)) << "rt=" << rt;
      auto parallel_at =
          ExecuteAtReferenceTime(indexed, rt, ForcedParallel(4, 64));
      ASSERT_TRUE(parallel_at.ok());
      EXPECT_EQ(Fingerprint(*parallel_at), Fingerprint(*scan_at))
          << "parallel rt=" << rt;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, IndexScanEquivalenceTest,
                         ::testing::ValuesIn(FuzzSeeds(12)));

// Batch-boundary sizes through the index path: results of exactly
// 0, 1, capacity and capacity + 1 tuples.
TEST(IndexScanBatchBoundaryTest, ExactResultSizes) {
  const size_t cap = TupleBatch::kDefaultCapacity;
  OngoingRelation r(Schema({{"ID", ValueType::kInt64},
                            {"VT", ValueType::kOngoingInterval}}));
  for (size_t i = 0; i < cap + 50; ++i) {
    ASSERT_TRUE(r.Insert({Value::Int64(static_cast<int64_t>(i)),
                          Value::Ongoing(OngoingInterval::Fixed(10, 20))})
                    .ok());
  }
  for (size_t want : {size_t{0}, size_t{1}, cap, cap + 1}) {
    PlanPtr plan =
        ProbePlan(&r, AllenOp::kOverlaps, "VT", FixedInterval{12, 18},
                  AccessPath::kIndex,
                  Lt(Col("ID"), Lit(static_cast<int64_t>(want))));
    auto result = Execute(plan);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->size(), want);
  }
}

// Re-opening the same compiled tree must reset the candidate cursor.
TEST(IndexScanBatchBoundaryTest, ReopenProducesTheSameResult) {
  OngoingRelation r = MakeMixedRelation(7, "", 200);
  PlanPtr plan = ProbePlan(&r, AllenOp::kOverlaps, "VT", FixedInterval{30, 70},
                           AccessPath::kIndex);
  auto compiled = Compile(plan, ExecMode::kOngoing);
  ASSERT_TRUE(compiled.ok());
  auto first = DrainToRelation(**compiled);
  ASSERT_TRUE(first.ok());
  auto second = DrainToRelation(**compiled);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(Fingerprint(*first), Fingerprint(*second));
}

// MaterializedView: the compiled tree (and the index inside it) is
// cached across Refresh(); modifications that change the indexed column
// — including in-place valid-time updates that keep the relation size —
// are detected via the column fingerprint and produce fresh results.
TEST(IndexScanMaterializedViewTest, RefreshRebuildsStaleIndex) {
  OngoingRelation r(Schema({{"ID", ValueType::kInt64},
                            {"VT", ValueType::kOngoingInterval}}));
  for (int64_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(r.Insert({Value::Int64(i),
                          Value::Ongoing(OngoingInterval::SinceUntilNow(i))})
                    .ok());
  }
  const FixedInterval probe{100, 200};
  PlanPtr plan =
      ProbePlan(&r, AllenOp::kBefore, "VT", probe, AccessPath::kIndex);
  auto view = MaterializedView::Create(plan);
  ASSERT_TRUE(view.ok());
  const size_t before_size = view->ongoing_result().size();

  // A refresh without modifications reuses the cached index.
  ASSERT_TRUE(view->Refresh().ok());
  EXPECT_EQ(view->ongoing_result().size(), before_size);

  // Close half the tuples at tc = 60: their VT becomes [i, 60), which
  // is before [100, 200) — an in-place, size-preserving change.
  auto deleted = TemporalDelete(&r, 1, 60, [](const Tuple& t) {
    return t.value(0).AsInt64() < 25;
  });
  ASSERT_TRUE(deleted.ok());
  ASSERT_EQ(r.size(), 50u);
  ASSERT_TRUE(view->Refresh().ok());

  PlanPtr rescan =
      ProbePlan(&r, AllenOp::kBefore, "VT", probe, AccessPath::kFullScan);
  auto expected = Execute(rescan);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(Fingerprint(view->ongoing_result()), Fingerprint(*expected));

  // Appending tuples is detected as well.
  ASSERT_TRUE(r.Insert({Value::Int64(50),
                        Value::Ongoing(OngoingInterval::Fixed(0, 90))})
                  .ok());
  ASSERT_TRUE(view->Refresh().ok());
  auto expected2 = Execute(rescan);
  ASSERT_TRUE(expected2.ok());
  EXPECT_EQ(Fingerprint(view->ongoing_result()), Fingerprint(*expected2));
}

}  // namespace
}  // namespace ongoingdb
