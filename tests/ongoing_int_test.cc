// Tests for ongoing integers and the duration function (the paper's first
// future-work item, Sec. X). The defining property is the same snapshot
// equivalence as for all other ongoing operations.
#include "core/ongoing_int.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace ongoingdb {
namespace {

TEST(OngoingIntTest, FixedConstant) {
  OngoingInt c(42);
  EXPECT_TRUE(c.IsFixed());
  for (TimePoint rt = -10; rt <= 10; ++rt) {
    EXPECT_EQ(c.Instantiate(rt), 42);
  }
}

TEST(OngoingIntTest, DurationOfFixedInterval) {
  OngoingInt d = Duration(OngoingInterval::Fixed(MD(10, 17), MD(10, 19)));
  EXPECT_TRUE(d.IsFixed());
  EXPECT_EQ(d.Instantiate(MD(10, 18)), 2);
}

TEST(OngoingIntTest, DurationOfExpandingInterval) {
  // duration([10/17, now)) = 0 up to 10/17, then grows by one per day.
  OngoingInt d = Duration(OngoingInterval::SinceUntilNow(MD(10, 17)));
  EXPECT_EQ(d.Instantiate(MD(10, 15)), 0);
  EXPECT_EQ(d.Instantiate(MD(10, 17)), 0);
  EXPECT_EQ(d.Instantiate(MD(10, 18)), 1);
  EXPECT_EQ(d.Instantiate(MD(10, 27)), 10);
}

TEST(OngoingIntTest, DurationOfShrinkingInterval) {
  // duration([now, 10/19)) shrinks to 0 as rt approaches 10/19.
  OngoingInt d = Duration(OngoingInterval::FromNowUntil(MD(10, 19)));
  EXPECT_EQ(d.Instantiate(MD(10, 15)), 4);
  EXPECT_EQ(d.Instantiate(MD(10, 18)), 1);
  EXPECT_EQ(d.Instantiate(MD(10, 19)), 0);
  EXPECT_EQ(d.Instantiate(MD(10, 25)), 0);
}

TEST(OngoingIntTest, DurationSnapshotEquivalence) {
  // forall rt: ||duration(iv)||rt == max(0, duration(||iv||rt)) over a
  // dense grid of endpoint configurations.
  const TimePoint lo = -3, hi = 4;
  for (TimePoint a = lo; a <= hi; ++a) {
    for (TimePoint b = a; b <= hi; ++b) {
      for (TimePoint c = lo; c <= hi; ++c) {
        for (TimePoint d = c; d <= hi; ++d) {
          OngoingInterval iv(OngoingTimePoint(a, b), OngoingTimePoint(c, d));
          OngoingInt dur = Duration(iv);
          for (TimePoint rt = lo - 2; rt <= hi + 2; ++rt) {
            FixedInterval f = iv.Instantiate(rt);
            int64_t expect = f.empty() ? 0 : f.end - f.start;
            EXPECT_EQ(dur.Instantiate(rt), expect)
                << "iv=" << iv.ToString() << " rt=" << rt;
          }
        }
      }
    }
  }
}

TEST(OngoingIntTest, DurationWithNowEndpoints) {
  OngoingInt d = Duration(OngoingInterval(OngoingTimePoint::Now(),
                                          OngoingTimePoint::Now()));
  for (TimePoint rt = -5; rt <= 5; ++rt) EXPECT_EQ(d.Instantiate(rt), 0);
}

TEST(OngoingIntTest, Arithmetic) {
  OngoingInt x = Duration(OngoingInterval::SinceUntilNow(0));
  OngoingInt y(3);
  OngoingInt sum = x.Add(y);
  OngoingInt diff = x.Subtract(y);
  for (TimePoint rt = -5; rt <= 10; ++rt) {
    EXPECT_EQ(sum.Instantiate(rt), x.Instantiate(rt) + 3);
    EXPECT_EQ(diff.Instantiate(rt), x.Instantiate(rt) - 3);
    EXPECT_EQ(x.Negate().Instantiate(rt), -x.Instantiate(rt));
  }
}

TEST(OngoingIntTest, MinMaxSplitAtCrossing) {
  // x(rt) = duration([0, now)) grows; y = 3 constant; min/max must split
  // exactly at the crossing rt = 3.
  OngoingInt x = Duration(OngoingInterval::SinceUntilNow(0));
  OngoingInt y(3);
  OngoingInt mn = x.Min(y);
  OngoingInt mx = x.Max(y);
  for (TimePoint rt = -5; rt <= 10; ++rt) {
    EXPECT_EQ(mn.Instantiate(rt), std::min(x.Instantiate(rt), int64_t{3}));
    EXPECT_EQ(mx.Instantiate(rt), std::max(x.Instantiate(rt), int64_t{3}));
  }
}

TEST(OngoingIntTest, Comparisons) {
  OngoingInt x = Duration(OngoingInterval::SinceUntilNow(0));
  OngoingInt y(3);
  OngoingBoolean lt = x.Less(y);
  OngoingBoolean le = x.LessEqual(y);
  OngoingBoolean eq = x.EqualTo(y);
  for (TimePoint rt = -5; rt <= 10; ++rt) {
    EXPECT_EQ(lt.Instantiate(rt), x.Instantiate(rt) < 3) << rt;
    EXPECT_EQ(le.Instantiate(rt), x.Instantiate(rt) <= 3) << rt;
    EXPECT_EQ(eq.Instantiate(rt), x.Instantiate(rt) == 3) << rt;
  }
}

// Property test: randomized durations combined with arithmetic and
// comparisons agree with instantiate-then-compute at every reference
// time.
class OngoingIntPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OngoingIntPropertyTest, CompositionSnapshotEquivalence) {
  Rng rng(GetParam() * 1000003 + 17);
  auto random_interval = [&rng]() {
    TimePoint a = rng.Uniform(-20, 20);
    TimePoint b = a + rng.Uniform(0, 15);
    TimePoint c = rng.Uniform(-20, 20);
    TimePoint d = c + rng.Uniform(0, 15);
    return OngoingInterval(OngoingTimePoint(a, b), OngoingTimePoint(c, d));
  };
  OngoingInterval i1 = random_interval();
  OngoingInterval i2 = random_interval();
  OngoingInt d1 = Duration(i1);
  OngoingInt d2 = Duration(i2);
  OngoingInt total = d1.Add(d2);
  OngoingInt longest = d1.Max(d2);
  OngoingInt shortest = d1.Min(d2);
  OngoingBoolean d1_shorter = d1.Less(d2);
  for (TimePoint rt = -40; rt <= 40; ++rt) {
    auto dur_at = [rt](const OngoingInterval& iv) -> int64_t {
      FixedInterval f = iv.Instantiate(rt);
      return f.empty() ? 0 : f.end - f.start;
    };
    int64_t v1 = dur_at(i1), v2 = dur_at(i2);
    EXPECT_EQ(total.Instantiate(rt), v1 + v2);
    EXPECT_EQ(longest.Instantiate(rt), std::max(v1, v2));
    EXPECT_EQ(shortest.Instantiate(rt), std::min(v1, v2));
    EXPECT_EQ(d1_shorter.Instantiate(rt), v1 < v2);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, OngoingIntPropertyTest,
                         ::testing::Range<uint64_t>(0, 60));

}  // namespace
}  // namespace ongoingdb
