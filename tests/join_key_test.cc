// Tests for the typed join keys: distinct multi-column keys that collide
// on the 64-bit key hash must still join correctly (equality, not the
// hash, decides matches), and the key-driven join algorithms must agree
// with nested-loop on randomized ongoing relations.
#include <gtest/gtest.h>

#include <functional>
#include <set>
#include <string>
#include <vector>

#include "query/join.h"
#include "util/rng.h"

namespace ongoingdb {
namespace {

// --- mirror of the typed key hash ------------------------------------------
// The collision construction below inverts the hash-combine chain, which
// requires knowing the combine formula. The mirror is asserted against
// JoinKeyHash first, so any drift in the implementation fails
// loudly here instead of silently weakening the collision test.

constexpr uint64_t kFnvSeed = 0xcbf29ce484222325ULL;
constexpr uint64_t kGolden = 0x9e3779b97f4a7c15ULL;

uint64_t Combine(uint64_t seed, uint64_t h) {
  return seed ^ (h + kGolden + (seed << 6) + (seed >> 2));
}

uint64_t MirrorInt64ValueHash(int64_t v) {
  uint64_t tag_seed = std::hash<int64_t>{}(
      static_cast<int64_t>(ValueType::kInt64));
  return Combine(tag_seed, std::hash<int64_t>{}(v));
}

uint64_t MirrorKeyHash(const std::vector<int64_t>& key) {
  uint64_t h = kFnvSeed;
  for (int64_t v : key) h = Combine(h, MirrorInt64ValueHash(v));
  return h;
}

Tuple IntKeyTuple(const std::vector<int64_t>& key) {
  std::vector<Value> values;
  for (int64_t v : key) values.push_back(Value::Int64(v));
  return Tuple(std::move(values));
}

TEST(JoinKeyHashTest, MirrorMatchesImplementation) {
  std::vector<size_t> indices{0, 1};
  for (const std::vector<int64_t>& key :
       {std::vector<int64_t>{0, 0}, {1, 100}, {-7, 42},
        {kMinInfinity, kMaxInfinity}}) {
    EXPECT_EQ(JoinKeyHash(IntKeyTuple(key), indices),
              MirrorKeyHash(key))
        << "the key-hash mirror in this test has drifted from the "
           "implementation; update it together with ValueHash/KeyViewHash";
  }
}

// Solves the combine chain backwards for the second key column: returns d
// such that the two-column key (c, d) hashes to `target`. Requires
// std::hash<int64_t> to be invertible (it is the identity cast on the
// standard libraries we build against; the caller checks).
int64_t SolveSecondColumn(int64_t c, uint64_t target) {
  uint64_t h1 = Combine(kFnvSeed, MirrorInt64ValueHash(c));
  // Combine(h1, vh_d) == target  =>  vh_d:
  uint64_t vh_d = (h1 ^ target) - kGolden - (h1 << 6) - (h1 >> 2);
  // vh_d == Combine(tag_seed, std::hash(d))  =>  std::hash(d):
  uint64_t tag_seed = std::hash<int64_t>{}(
      static_cast<int64_t>(ValueType::kInt64));
  uint64_t hash_d = (tag_seed ^ vh_d) - kGolden - (tag_seed << 6) -
                    (tag_seed >> 2);
  return static_cast<int64_t>(hash_d);
}

std::multiset<std::string> Fingerprint(const OngoingRelation& r) {
  std::multiset<std::string> rows;
  for (const Tuple& t : r.tuples()) rows.insert(t.ToString());
  return rows;
}

TEST(JoinKeyHashTest, CollidingMultiColumnKeysStillJoinCorrectly) {
  if (std::hash<int64_t>{}(int64_t{123456789}) != 123456789ULL) {
    GTEST_SKIP() << "std::hash<int64_t> is not invertible on this platform; "
                    "collision construction unavailable";
  }
  std::vector<size_t> indices{0, 1};
  const std::vector<int64_t> key1{1, 100};
  const int64_t d = SolveSecondColumn(2, MirrorKeyHash(key1));
  const std::vector<int64_t> key2{2, d};
  ASSERT_NE(key1, key2);
  ASSERT_EQ(JoinKeyHash(IntKeyTuple(key1), indices),
            JoinKeyHash(IntKeyTuple(key2), indices))
      << "constructed keys do not collide";

  Schema schema({{"K1", ValueType::kInt64},
                 {"K2", ValueType::kInt64},
                 {"P", ValueType::kString}});
  OngoingRelation left(schema), right(schema);
  ASSERT_TRUE(left.Insert({Value::Int64(key1[0]), Value::Int64(key1[1]),
                           Value::String("l1")})
                  .ok());
  ASSERT_TRUE(left.Insert({Value::Int64(key2[0]), Value::Int64(key2[1]),
                           Value::String("l2")})
                  .ok());
  ASSERT_TRUE(right.Insert({Value::Int64(key1[0]), Value::Int64(key1[1]),
                            Value::String("r1")})
                  .ok());
  ASSERT_TRUE(right.Insert({Value::Int64(key2[0]), Value::Int64(key2[1]),
                            Value::String("r2")})
                  .ok());

  ExprPtr pred = And(Eq(Col("L.K1"), Col("R.K1")),
                     Eq(Col("L.K2"), Col("R.K2")));
  auto hash = HashJoin(left, right, pred, "L", "R");
  auto merge = SortMergeJoin(left, right, pred, "L", "R");
  auto nl = NestedLoopJoin(left, right, pred, "L", "R");
  ASSERT_TRUE(hash.ok());
  ASSERT_TRUE(merge.ok());
  ASSERT_TRUE(nl.ok());
  // Each key matches only itself: the colliding-but-unequal keys must not
  // cross-join.
  EXPECT_EQ(hash->size(), 2u);
  EXPECT_EQ(Fingerprint(*hash), Fingerprint(*nl));
  EXPECT_EQ(Fingerprint(*merge), Fingerprint(*nl));
}

TEST(JoinKeyHashTest, ManyCollidingKeysAgainstNestedLoop) {
  if (std::hash<int64_t>{}(int64_t{123456789}) != 123456789ULL) {
    GTEST_SKIP() << "std::hash<int64_t> is not invertible on this platform";
  }
  // A whole family of distinct two-column keys sharing one hash bucket
  // chain: every probe has to walk colliding entries and reject them via
  // typed equality.
  const uint64_t target = MirrorKeyHash({0, 0});
  Schema schema({{"K1", ValueType::kInt64}, {"K2", ValueType::kInt64}});
  OngoingRelation left(schema), right(schema);
  for (int64_t c = 0; c < 16; ++c) {
    const int64_t d = SolveSecondColumn(c, target);
    ASSERT_TRUE(left.Insert({Value::Int64(c), Value::Int64(d)}).ok());
    ASSERT_TRUE(right.Insert({Value::Int64(c), Value::Int64(d)}).ok());
    // A near-miss row that shares K1 but not K2.
    ASSERT_TRUE(right.Insert({Value::Int64(c), Value::Int64(d + 1)}).ok());
  }
  ExprPtr pred = And(Eq(Col("L.K1"), Col("R.K1")),
                     Eq(Col("L.K2"), Col("R.K2")));
  auto hash = HashJoin(left, right, pred, "L", "R");
  auto nl = NestedLoopJoin(left, right, pred, "L", "R");
  ASSERT_TRUE(hash.ok());
  ASSERT_TRUE(nl.ok());
  EXPECT_EQ(hash->size(), 16u);
  EXPECT_EQ(Fingerprint(*hash), Fingerprint(*nl));
}

// --- randomized equivalence -------------------------------------------------

OngoingRelation RandomRelation(uint64_t seed, size_t n) {
  Rng rng(seed);
  OngoingRelation r(Schema({{"ID", ValueType::kInt64},
                            {"K", ValueType::kInt64},
                            {"NAME", ValueType::kString},
                            {"VT", ValueType::kOngoingInterval}}));
  for (size_t i = 0; i < n; ++i) {
    OngoingInterval vt;
    if (rng.Bernoulli(0.3)) {
      vt = OngoingInterval::SinceUntilNow(rng.Uniform(0, 100));
    } else {
      TimePoint s = rng.Uniform(0, 100);
      vt = OngoingInterval::Fixed(s, s + rng.Uniform(1, 30));
    }
    EXPECT_TRUE(r.Insert({Value::Int64(static_cast<int64_t>(i)),
                          Value::Int64(rng.Uniform(0, 7)),
                          Value::String(rng.String(3)),
                          Value::Ongoing(vt)})
                    .ok());
  }
  return r;
}

class JoinEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JoinEquivalenceTest, HashAndMergeMatchNestedLoop) {
  OngoingRelation left = RandomRelation(GetParam() * 2 + 1, 35);
  OngoingRelation right = RandomRelation(GetParam() * 2 + 2, 25);
  ExprPtr pred = And(Eq(Col("L.K"), Col("R.K")),
                     OverlapsExpr(Col("L.VT"), Col("R.VT")));
  auto nl = NestedLoopJoin(left, right, pred, "L", "R");
  auto hash = HashJoin(left, right, pred, "L", "R");
  auto merge = SortMergeJoin(left, right, pred, "L", "R");
  ASSERT_TRUE(nl.ok());
  ASSERT_TRUE(hash.ok());
  ASSERT_TRUE(merge.ok());
  std::multiset<std::string> expected = Fingerprint(*nl);
  EXPECT_EQ(Fingerprint(*hash), expected);
  EXPECT_EQ(Fingerprint(*merge), expected);
}

TEST_P(JoinEquivalenceTest, MultiColumnStringKeysMatchNestedLoop) {
  // String + int composite keys: the typed path must agree with
  // nested-loop without ever formatting a key string.
  Rng rng(GetParam() * 31 + 7);
  Schema schema({{"CITY", ValueType::kString},
                 {"K", ValueType::kInt64},
                 {"VT", ValueType::kOngoingInterval}});
  auto make = [&](size_t n) {
    OngoingRelation r(schema);
    for (size_t i = 0; i < n; ++i) {
      TimePoint s = rng.Uniform(0, 60);
      EXPECT_TRUE(
          r.Insert({Value::String(rng.Bernoulli(0.5) ? "basel" : "zurich"),
                    Value::Int64(rng.Uniform(0, 3)),
                    Value::Ongoing(OngoingInterval::Fixed(
                        s, s + rng.Uniform(1, 40)))})
              .ok());
    }
    return r;
  };
  OngoingRelation left = make(20), right = make(20);
  ExprPtr pred =
      And(Eq(Col("L.CITY"), Col("R.CITY")),
          And(Eq(Col("L.K"), Col("R.K")),
              OverlapsExpr(Col("L.VT"), Col("R.VT"))));
  auto nl = NestedLoopJoin(left, right, pred, "L", "R");
  auto hash = HashJoin(left, right, pred, "L", "R");
  auto merge = SortMergeJoin(left, right, pred, "L", "R");
  ASSERT_TRUE(nl.ok());
  ASSERT_TRUE(hash.ok());
  ASSERT_TRUE(merge.ok());
  std::multiset<std::string> expected = Fingerprint(*nl);
  EXPECT_EQ(Fingerprint(*hash), expected);
  EXPECT_EQ(Fingerprint(*merge), expected);
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, JoinEquivalenceTest,
                         ::testing::Range<uint64_t>(0, 25));

}  // namespace
}  // namespace ongoingdb
