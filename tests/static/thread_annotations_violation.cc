// Negative compile-only fixture (CMake target:
// thread_annotations_compile_violation, WILL_FAIL, clang only): an
// unlocked write to a GUARDED_BY member. The test asserts that
// `-Werror=thread-safety` REJECTS this file — i.e. that the annotated
// Mutex wrapper actually gives the analysis something to check and a
// future un-disciplined access cannot slip through a clang CI build.
#include <cstdint>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class Counter {
 public:
  // VIOLATION: writes value_ without holding mu_. Under clang this is
  // error: writing variable 'value_' requires holding mutex 'mu_'.
  void UnlockedAdd(uint64_t n) { value_ += n; }

 private:
  ongoingdb::Mutex mu_;
  uint64_t value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.UnlockedAdd(1);
  return 0;
}
