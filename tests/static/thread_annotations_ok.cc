// Positive compile-only fixture for the thread-safety annotations
// (CMake target: thread_annotations_compile_ok). Exercises the whole
// annotated vocabulary correctly; must compile warning-free under every
// supported compiler — under clang with -Wthread-safety, under GCC with
// the macros expanded to nothing.
#include <cstdint>
#include <deque>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

using ongoingdb::CondVar;
using ongoingdb::Mutex;
using ongoingdb::MutexLock;

class BoundedCounter {
 public:
  void Add(uint64_t n) EXCLUDES(mu_) {
    MutexLock lock(mu_);
    value_ += n;
    history_.push_back(value_);
    BumpLocked();
    cv_.NotifyAll();
  }

  void WaitUntilAtLeast(uint64_t n) EXCLUDES(mu_) {
    MutexLock lock(mu_);
    while (value_ < n) cv_.Wait(mu_);
  }

  uint64_t Snapshot() EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return value_;
  }

 private:
  // A REQUIRES helper: callable only with the lock held.
  void BumpLocked() REQUIRES(mu_) { ++value_; }

  Mutex mu_;
  CondVar cv_;
  uint64_t value_ GUARDED_BY(mu_) = 0;
  std::deque<uint64_t> history_ GUARDED_BY(mu_);
};

// Manual Lock/Unlock pairing is also analyzable.
class ManualLocking {
 public:
  void Touch() {
    mu_.Lock();
    state_ = 1;
    mu_.Unlock();
  }

  bool TryTouch() {
    if (mu_.TryLock()) {
      state_ = 2;
      mu_.Unlock();
      return true;
    }
    return false;
  }

 private:
  Mutex mu_;
  int state_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  BoundedCounter counter;
  counter.Add(3);
  counter.WaitUntilAtLeast(1);
  ManualLocking manual;
  manual.Touch();
  return counter.Snapshot() == 4 && manual.TryTouch() ? 0 : 1;
}
