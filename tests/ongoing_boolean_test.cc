// Unit tests for ongoing booleans b[St, Sf] (Def. 3) and the logical
// connectives (Theorem 1).
#include "core/ongoing_boolean.h"

#include <gtest/gtest.h>

namespace ongoingdb {
namespace {

TEST(OngoingBooleanTest, TrueAndFalseGeneralizeFixedBooleans) {
  EXPECT_TRUE(OngoingBoolean::True().IsAlwaysTrue());
  EXPECT_TRUE(OngoingBoolean::False().IsAlwaysFalse());
  EXPECT_EQ(OngoingBoolean::FromBool(true), OngoingBoolean::True());
  EXPECT_EQ(OngoingBoolean::FromBool(false), OngoingBoolean::False());
  for (TimePoint rt = -10; rt <= 10; ++rt) {
    EXPECT_TRUE(OngoingBoolean::True().Instantiate(rt));
    EXPECT_FALSE(OngoingBoolean::False().Instantiate(rt));
  }
}

TEST(OngoingBooleanTest, InstantiationPerDefinition3) {
  // b[{[10/18, inf)}, {(-inf, 10/18)}] from the paper: true at 10/18 and
  // later, false earlier.
  OngoingBoolean b(IntervalSet{{MD(10, 18), kMaxInfinity}});
  EXPECT_FALSE(b.Instantiate(MD(10, 17)));
  EXPECT_TRUE(b.Instantiate(MD(10, 18)));
  EXPECT_TRUE(b.Instantiate(MD(12, 31)));
}

TEST(OngoingBooleanTest, StAndSfPartitionTheDomain) {
  OngoingBoolean b(IntervalSet{{0, 10}, {20, 30}});
  IntervalSet st = b.st();
  IntervalSet sf = b.sf();
  EXPECT_TRUE(st.Intersect(sf).IsEmpty());
  EXPECT_TRUE(st.Union(sf).IsAll());
}

TEST(OngoingBooleanTest, ConjunctionPerTheorem1) {
  // b[St ^ S't]: true exactly where both are true.
  OngoingBoolean x(IntervalSet{{0, 10}});
  OngoingBoolean y(IntervalSet{{5, 15}});
  OngoingBoolean both = x.And(y);
  EXPECT_EQ(both.st(), (IntervalSet{{5, 10}}));
  for (TimePoint rt = -5; rt <= 20; ++rt) {
    EXPECT_EQ(both.Instantiate(rt), x.Instantiate(rt) && y.Instantiate(rt));
  }
}

TEST(OngoingBooleanTest, DisjunctionPerTheorem1) {
  OngoingBoolean x(IntervalSet{{0, 10}});
  OngoingBoolean y(IntervalSet{{5, 15}});
  OngoingBoolean either = x.Or(y);
  EXPECT_EQ(either.st(), (IntervalSet{{0, 15}}));
  for (TimePoint rt = -5; rt <= 20; ++rt) {
    EXPECT_EQ(either.Instantiate(rt), x.Instantiate(rt) || y.Instantiate(rt));
  }
}

TEST(OngoingBooleanTest, NegationSwapsStAndSf) {
  OngoingBoolean x(IntervalSet{{0, 10}});
  OngoingBoolean not_x = x.Not();
  EXPECT_EQ(not_x.st(), x.sf());
  for (TimePoint rt = -5; rt <= 15; ++rt) {
    EXPECT_EQ(not_x.Instantiate(rt), !x.Instantiate(rt));
  }
  EXPECT_EQ(not_x.Not(), x);
}

TEST(OngoingBooleanTest, OperatorSugar) {
  OngoingBoolean x(IntervalSet{{0, 10}});
  OngoingBoolean y(IntervalSet{{5, 15}});
  EXPECT_EQ(x && y, x.And(y));
  EXPECT_EQ(x || y, x.Or(y));
  EXPECT_EQ(!x, x.Not());
}

TEST(OngoingBooleanTest, MixedFixedAndOngoingCombination) {
  // Sec. VI: the generalization lets predicates on fixed attributes
  // combine with predicates on ongoing attributes.
  OngoingBoolean ongoing(IntervalSet{{MD(1, 26), MD(8, 16)}});
  EXPECT_EQ(ongoing.And(OngoingBoolean::True()), ongoing);
  EXPECT_TRUE(ongoing.And(OngoingBoolean::False()).IsAlwaysFalse());
  EXPECT_EQ(ongoing.Or(OngoingBoolean::False()), ongoing);
  EXPECT_TRUE(ongoing.Or(OngoingBoolean::True()).IsAlwaysTrue());
}

TEST(OngoingBooleanTest, ToString) {
  OngoingBoolean b(IntervalSet{{MD(1, 26), MD(8, 16)}});
  EXPECT_EQ(b.ToString(), "b[{[01/26, 08/16)}]");
}

}  // namespace
}  // namespace ongoingdb
