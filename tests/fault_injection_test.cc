// Fault-injection suite for the query-lifecycle contract
// (query/exec_context.h, util/failpoint.h, docs/DESIGN.md "Query
// lifecycle"): randomized plans × exec modes × worker counts are run
// with injected cancellations, expired deadlines, tiny memory budgets,
// and armed failpoints at every hazardous seam, asserting that
//
//  * the error surfaces as a clean typed Status (no hang, no crash);
//  * every producer task is joined before the error returns (TSan
//    covers the proof);
//  * memory accounting drains back to zero (no leaked charges);
//  * after DisarmAll() + ctx.Reset(), reopening the SAME operator tree
//    produces exactly the reference result.
//
// The suite runs under ASan+UBSan and TSan in CI (satellite of the
// lifecycle PR); FailpointEnvSmoke additionally verifies the
// ONGOINGDB_FAILPOINTS environment activation path when CI sets it.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "query/aggregate.h"
#include "query/executor.h"
#include "query/materialized_view.h"
#include "relation/modifications.h"
#include "server/session.h"
#include "testing/plan_fuzz.h"
#include "util/failpoint.h"

namespace ongoingdb {
namespace {

using plan_fuzz::Fingerprint;
using plan_fuzz::ForcedParallel;
using plan_fuzz::FuzzSeeds;
using plan_fuzz::MakeBase;
using plan_fuzz::PlanFixture;
using plan_fuzz::RandomPlan;
using plan_fuzz::ReferenceExecute;
using plan_fuzz::ReferenceExecuteAt;

bool IsInjectedFault(const Status& st) {
  return st.code() == StatusCode::kInternal &&
         st.message().find("failpoint") != std::string::npos;
}

// Every test starts and ends with all sites disarmed, so ambient
// ONGOINGDB_FAILPOINTS arming (the CI smoke job) cannot poison the
// deterministic scenarios, and a failed scenario cannot poison the next.
class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override { Failpoint::DisarmAll(); }
  void TearDown() override {
    Failpoint::DisarmAll();
    Failpoint::SuspendAll(false);
  }
};

// --- QueryContext unit tests ------------------------------------------------

TEST_F(FaultInjectionTest, ContextCheckReportsTypedStatuses) {
  QueryContext ctx;
  EXPECT_TRUE(ctx.Check().ok());

  ctx.Cancel();
  EXPECT_TRUE(ctx.IsCancelled());
  EXPECT_EQ(ctx.Check().code(), StatusCode::kCancelled);
  ctx.Reset();
  EXPECT_TRUE(ctx.Check().ok());

  ctx.SetDeadline(std::chrono::steady_clock::now() -
                  std::chrono::milliseconds(1));
  EXPECT_EQ(ctx.Check().code(), StatusCode::kDeadlineExceeded);
  ctx.ClearDeadline();
  EXPECT_TRUE(ctx.Check().ok());
  ctx.SetTimeout(std::chrono::hours(1));
  EXPECT_TRUE(ctx.Check().ok());

  ctx.Reset();
  ctx.SetMemoryBudget(100);
  EXPECT_TRUE(ctx.ChargeMemory(60).ok());
  EXPECT_EQ(ctx.memory_used(), 60u);
  // The failing charge is still recorded: the matching release keeps the
  // accounting exact.
  EXPECT_EQ(ctx.ChargeMemory(60).code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(ctx.memory_used(), 120u);
  EXPECT_EQ(ctx.Check().code(), StatusCode::kResourceExhausted);
  ctx.ReleaseMemory(120);
  EXPECT_EQ(ctx.memory_used(), 0u);
  EXPECT_TRUE(ctx.Check().ok());

  // Reset clears the accounting but keeps the budget limit.
  EXPECT_TRUE(ctx.ChargeMemory(90).ok());
  ctx.Cancel();
  ctx.Reset();
  EXPECT_EQ(ctx.memory_used(), 0u);
  EXPECT_FALSE(ctx.ChargeMemory(150).ok());
  ctx.Reset();
}

TEST_F(FaultInjectionTest, MemoryChargeReleasesOnDestructionAndReinit) {
  QueryContext ctx;
  ctx.SetMemoryBudget(1000);
  {
    MemoryCharge charge;
    charge.Init(&ctx);
    EXPECT_TRUE(charge.Add(400).ok());
    EXPECT_EQ(ctx.memory_used(), 400u);
    // Re-Init (a reopen after a failed run) releases the stale charge.
    charge.Init(&ctx);
    EXPECT_EQ(ctx.memory_used(), 0u);
    EXPECT_TRUE(charge.Add(250).ok());
  }
  EXPECT_EQ(ctx.memory_used(), 0u);  // destructor backstop
  MemoryCharge null_charge;
  null_charge.Init(nullptr);
  EXPECT_TRUE(null_charge.Add(1 << 30).ok());  // no-op without a context
}

TEST_F(FaultInjectionTest, LifecycleStatusHelpers) {
  EXPECT_TRUE(IsLifecycleStatus(Status::Cancelled("x")));
  EXPECT_TRUE(IsLifecycleStatus(Status::DeadlineExceeded("x")));
  EXPECT_TRUE(IsLifecycleStatus(Status::ResourceExhausted("x")));
  EXPECT_FALSE(IsLifecycleStatus(Status::OK()));
  EXPECT_FALSE(IsLifecycleStatus(Status::Internal("x")));
  EXPECT_EQ(FriendlyLifecycleMessage(Status::Cancelled("x")),
            "query cancelled");
  EXPECT_EQ(FriendlyLifecycleMessage(Status::DeadlineExceeded("x")),
            "query timed out");
  EXPECT_EQ(FriendlyLifecycleMessage(Status::ResourceExhausted("x")),
            "query exceeded its memory budget");
}

// --- Failpoint unit tests ---------------------------------------------------

TEST_F(FaultInjectionTest, FailpointModes) {
  Failpoint& fp = Failpoint::GetOrCreate("test.modes");
  EXPECT_FALSE(fp.armed());
  EXPECT_FALSE(fp.ShouldFail());

  fp.ArmAlways();
  EXPECT_TRUE(fp.armed());
  EXPECT_TRUE(fp.ShouldFail());
  EXPECT_TRUE(fp.ShouldFail());
  EXPECT_EQ(fp.hits(), 2u);
  EXPECT_TRUE(IsInjectedFault(fp.Fail()));
  EXPECT_NE(fp.Fail().message().find("test.modes"), std::string::npos);

  fp.ArmAfterHits(3);
  EXPECT_EQ(fp.hits(), 0u);  // rearming resets the hit count
  EXPECT_FALSE(fp.ShouldFail());
  EXPECT_FALSE(fp.ShouldFail());
  EXPECT_FALSE(fp.ShouldFail());
  EXPECT_TRUE(fp.ShouldFail());
  EXPECT_TRUE(fp.ShouldFail());

  fp.Disarm();
  EXPECT_FALSE(fp.armed());
  EXPECT_FALSE(fp.ShouldFail());
}

TEST_F(FaultInjectionTest, FailpointProbabilityIsDeterministic) {
  Failpoint& fp = Failpoint::GetOrCreate("test.prob");
  auto sample = [&fp](double p, uint64_t seed, int n) {
    fp.ArmProbability(p, seed);
    std::vector<bool> fired;
    fired.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) fired.push_back(fp.ShouldFail());
    return fired;
  };
  // Same (p, seed) replays the same fault schedule.
  EXPECT_EQ(sample(0.3, 42, 200), sample(0.3, 42, 200));
  // p = 0 never fires, p = 1 always fires.
  std::vector<bool> never = sample(0.0, 7, 100);
  EXPECT_EQ(std::count(never.begin(), never.end(), true), 0);
  std::vector<bool> always = sample(1.0, 7, 100);
  EXPECT_EQ(std::count(always.begin(), always.end(), true), 100);
  // A middling p fires sometimes but not always.
  std::vector<bool> mixed = sample(0.5, 99, 400);
  auto fired = std::count(mixed.begin(), mixed.end(), true);
  EXPECT_GT(fired, 0);
  EXPECT_LT(fired, 400);
  fp.Disarm();
}

TEST_F(FaultInjectionTest, FailpointSpecParsing) {
  Failpoint& fp = Failpoint::GetOrCreate("test.spec");
  EXPECT_TRUE(fp.ArmFromSpec("always").ok());
  EXPECT_TRUE(fp.ShouldFail());
  EXPECT_TRUE(fp.ArmFromSpec("off").ok());
  EXPECT_FALSE(fp.armed());
  EXPECT_TRUE(fp.ArmFromSpec("after:2").ok());
  EXPECT_FALSE(fp.ShouldFail());
  EXPECT_FALSE(fp.ShouldFail());
  EXPECT_TRUE(fp.ShouldFail());
  EXPECT_TRUE(fp.ArmFromSpec("prob:0.5:123").ok());
  EXPECT_TRUE(fp.armed());
  // Bad specs are rejected and leave the site disarmed.
  for (const char* bad : {"", "sometimes", "after:", "after:x", "prob:",
                          "prob:2.5", "prob:-1", "prob:0.5:zz"}) {
    EXPECT_FALSE(fp.ArmFromSpec(bad).ok()) << bad;
    EXPECT_FALSE(fp.armed()) << bad;
  }
}

TEST_F(FaultInjectionTest, FailpointRegistryAndSuspension) {
  // The library's planted sites are registered by static initialization.
  std::vector<std::string> names = Failpoint::RegisteredNames();
  for (const char* site : {"exec.open", "exec.next", "exec.materialize",
                           "gather.handoff", "index.build",
                           "repartition.route", "view.delta_apply"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), site), names.end())
        << "site not planted: " << site;
    EXPECT_NE(Failpoint::Find(site), nullptr);
  }
  EXPECT_EQ(Failpoint::Find("no.such.site"), nullptr);

  ScopedFailpoint guard("exec.open", "always");
  EXPECT_TRUE(guard.failpoint().armed());
  Failpoint::SuspendAll(true);
  EXPECT_FALSE(guard.failpoint().ShouldFail());  // suspended, still armed
  EXPECT_TRUE(guard.failpoint().armed());
  Failpoint::SuspendAll(false);
  EXPECT_TRUE(guard.failpoint().ShouldFail());
  Failpoint::DisarmAll();
  EXPECT_FALSE(guard.failpoint().armed());
}

TEST_F(FaultInjectionTest, ScopedFailpointDisarmsOnExit) {
  {
    ScopedFailpoint guard("exec.next", "always");
    EXPECT_TRUE(Failpoint::Find("exec.next")->armed());
  }
  EXPECT_FALSE(Failpoint::Find("exec.next")->armed());
}

// --- environment activation (run by the CI smoke step) ----------------------

TEST(FailpointEnvSmoke, EnvArmedSiteFailsQueries) {
  const char* env = std::getenv("ONGOINGDB_FAILPOINTS");
  if (env == nullptr ||
      std::string(env).find("exec.open=always") == std::string::npos) {
    GTEST_SKIP()
        << "run with ONGOINGDB_FAILPOINTS=exec.open=always to exercise "
           "environment activation";
  }
  EXPECT_TRUE(Failpoint::Find("exec.open") != nullptr &&
              Failpoint::Find("exec.open")->armed());
  OngoingRelation r(Schema({{"K", ValueType::kInt64},
                            {"VT", ValueType::kOngoingInterval}}));
  ASSERT_TRUE(
      r.Insert({Value::Int64(1),
                Value::Ongoing(OngoingInterval::SinceUntilNow(0))})
          .ok());
  // A filter on top keeps the drain off the borrowed-scan shortcut, so
  // the root Open (and with it the armed site) is actually reached.
  PlanPtr plan = Filter(Scan(&r, "R"), Lt(Col("K"), Lit(int64_t{10})));
  auto result = Execute(plan);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(IsInjectedFault(result.status()));
  // Suspension restores fault-free execution without touching the
  // environment arming.
  Failpoint::SuspendAll(true);
  EXPECT_TRUE(Execute(plan).ok());
  Failpoint::SuspendAll(false);
}

// --- randomized fault-injection sweeps --------------------------------------

struct ExecConfig {
  const char* name;
  size_t workers;  // 0 = serial Compile (no ParallelOptions)
  size_t morsel_size;
};

const ExecConfig kConfigs[] = {
    {"serial", 0, 0},
    {"parallel1", 1, 3},
    {"parallel2", 2, 3},
    {"parallel4", 4, 3},
};

Result<PhysicalOpPtr> CompileFor(const PlanPtr& plan, const ExecConfig& cfg,
                                 QueryContext* ctx) {
  if (cfg.workers == 0) {
    return Compile(plan, ExecMode::kOngoing, 0, ctx);
  }
  return Compile(plan, ExecMode::kOngoing, 0,
                 ForcedParallel(cfg.workers, cfg.morsel_size), ctx);
}

// One lifecycle scenario: run `arm` (arming failpoints and/or poisoning
// the context), drain the tree expecting either a clean typed error or —
// when the fault never got hit — the correct result; then disarm, reset,
// and reopen the SAME tree, which must produce exactly `want`.
void RunScenario(const char* label, PhysicalOperator& root, QueryContext& ctx,
                 const std::multiset<std::string>& want,
                 const std::function<void()>& arm,
                 bool expect_failure = false,
                 const std::function<void()>& settle = {}) {
  SCOPED_TRACE(label);
  arm();
  auto faulty = DrainToRelation(root, &ctx);
  if (!faulty.ok()) {
    const Status& st = faulty.status();
    EXPECT_TRUE(IsLifecycleStatus(st) || IsInjectedFault(st))
        << st.ToString();
  } else {
    EXPECT_FALSE(expect_failure) << "fault did not surface";
    EXPECT_EQ(Fingerprint(*faulty), want);
  }
  // All charges are released once the tree is closed (DrainToRelation
  // closes on every path).
  EXPECT_EQ(ctx.memory_used(), 0u);

  // Any concurrent faulting (the async canceller) must finish before the
  // context resets — otherwise a late Cancel() poisons the recovery run.
  if (settle) settle();
  Failpoint::DisarmAll();
  ctx.Reset();
  ctx.SetMemoryBudget(0);  // Reset keeps the budget limit; clear it here
  auto recovered = DrainToRelation(root, &ctx);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(Fingerprint(*recovered), want);
  EXPECT_EQ(ctx.memory_used(), 0u);
}

class LifecycleFuzzTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override { Failpoint::DisarmAll(); }
  void TearDown() override {
    Failpoint::DisarmAll();
    Failpoint::SuspendAll(false);
  }
};

TEST_P(LifecycleFuzzTest, InjectedFaultsSurfaceCleanlyAndTreesReopen) {
  const uint64_t seed = GetParam();
  ONGOINGDB_FUZZ_SEED_TRACE(seed);
  Rng rng(seed);
  PlanFixture fx;
  PlanPtr plan = RandomPlan(rng, &fx, 3);
  auto reference = ReferenceExecute(plan);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  const std::multiset<std::string> want = Fingerprint(*reference);

  for (const ExecConfig& cfg : kConfigs) {
    SCOPED_TRACE(cfg.name);
    QueryContext ctx;
    auto compiled = CompileFor(plan, cfg, &ctx);
    ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
    PhysicalOperator& root = **compiled;

    RunScenario("pre-cancelled", root, ctx, want, [&ctx] { ctx.Cancel(); },
                /*expect_failure=*/true);
    RunScenario("expired-deadline", root, ctx, want,
                [&ctx] {
                  ctx.SetDeadline(std::chrono::steady_clock::now() -
                                  std::chrono::milliseconds(1));
                },
                /*expect_failure=*/true);
    RunScenario("tiny-budget", root, ctx, want,
                [&ctx] { ctx.SetMemoryBudget(1); });

    // Every planted seam, in every trigger mode that can reach it. Sites
    // a given plan/config never reaches (no index, serial gather) simply
    // do not fire — the scenario then checks the correct result instead.
    // A bare-scan root in a serial tree is drained through the borrowed
    // shortcut without ever calling Open — the one shape exec.open
    // cannot reach.
    const bool open_reachable =
        plan->kind() != PlanKind::kScan || cfg.workers >= 2;
    RunScenario("fp-open-always", root, ctx, want,
                [] { Failpoint::Find("exec.open")->ArmAlways(); },
                /*expect_failure=*/open_reachable);
    RunScenario("fp-open-mid", root, ctx, want, [] {
      Failpoint::Find("exec.open")->ArmAfterHits(1);
    });
    RunScenario("fp-next-first", root, ctx, want, [] {
      Failpoint::Find("exec.next")->ArmAlways();
    });
    RunScenario("fp-next-mid", root, ctx, want, [] {
      Failpoint::Find("exec.next")->ArmAfterHits(2);
    });
    RunScenario("fp-next-prob", root, ctx, want, [seed] {
      Failpoint::Find("exec.next")->ArmProbability(0.3, seed);
    });
    RunScenario("fp-materialize", root, ctx, want, [] {
      Failpoint::Find("exec.materialize")->ArmAfterHits(1);
    });
    RunScenario("fp-handoff", root, ctx, want, [] {
      Failpoint::Find("gather.handoff")->ArmAfterHits(1);
    });
    RunScenario("fp-index-build", root, ctx, want, [] {
      Failpoint::Find("index.build")->ArmAlways();
    });
    RunScenario("fp-route", root, ctx, want, [] {
      Failpoint::Find("repartition.route")->ArmAfterHits(1);
    });

    // Concurrent cancellation: a racing thread cancels while the tree
    // drains. Whichever side wins, the error (if any) is typed, workers
    // are joined, and the tree reopens to the exact result.
    std::thread canceller;
    RunScenario(
        "async-cancel", root, ctx, want,
        [&ctx, &canceller] {
          canceller = std::thread([&ctx] { ctx.Cancel(); });
        },
        /*expect_failure=*/false,
        /*settle=*/[&canceller] { canceller.join(); });
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LifecycleFuzzTest,
                         ::testing::ValuesIn(FuzzSeeds(6)));

// Clifford-mode (instantiated) execution honors the same contract.
TEST_P(LifecycleFuzzTest, AtReferenceTimeHonorsLifecycle) {
  const uint64_t seed = GetParam();
  ONGOINGDB_FUZZ_SEED_TRACE(seed);
  Rng rng(seed);
  PlanFixture fx;
  PlanPtr plan = RandomPlan(rng, &fx, 2);
  const TimePoint rt = 50;
  auto reference = ReferenceExecuteAt(plan, rt);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  QueryContext ctx;
  ctx.Cancel();
  auto cancelled = ExecuteAtReferenceTime(plan, rt, &ctx);
  ASSERT_FALSE(cancelled.ok());
  EXPECT_EQ(cancelled.status().code(), StatusCode::kCancelled);

  ctx.Reset();
  {
    ScopedFailpoint guard("exec.next", "after:1");
    auto faulty = ExecuteAtReferenceTime(plan, rt, &ctx);
    if (!faulty.ok()) {
      EXPECT_TRUE(IsInjectedFault(faulty.status()));
    }
  }
  auto recovered = ExecuteAtReferenceTime(plan, rt, &ctx);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(Fingerprint(*recovered), Fingerprint(*reference));
  EXPECT_EQ(ctx.memory_used(), 0u);
}

// --- executor / aggregate / view surfaces -----------------------------------

TEST_F(FaultInjectionTest, ExecuteSurfacesTypedStatuses) {
  Rng rng(11);
  OngoingRelation r = MakeBase(rng, "E_", 30);
  PlanPtr plan = Filter(Scan(&r, "R"), Lt(Col("E_ID"), Lit(int64_t{25})));

  QueryContext ctx;
  ctx.Cancel();
  EXPECT_EQ(Execute(plan, &ctx).status().code(), StatusCode::kCancelled);
  EXPECT_EQ(Execute(plan, ForcedParallel(2, 4), &ctx).status().code(),
            StatusCode::kCancelled);

  ctx.Reset();
  ctx.SetDeadline(std::chrono::steady_clock::now() -
                  std::chrono::milliseconds(1));
  EXPECT_EQ(Execute(plan, &ctx).status().code(),
            StatusCode::kDeadlineExceeded);

  ctx.Reset();
  ctx.SetMemoryBudget(8);  // smaller than any materialized tuple
  auto exhausted = Execute(plan, &ctx);
  ASSERT_FALSE(exhausted.ok());
  EXPECT_EQ(exhausted.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(ctx.memory_used(), 0u);

  // A generous budget passes and the result matches the unbudgeted run.
  ctx.Reset();
  ctx.SetMemoryBudget(64 << 20);
  auto budgeted = Execute(plan, &ctx);
  ASSERT_TRUE(budgeted.ok()) << budgeted.status().ToString();
  auto plain = Execute(plan);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(Fingerprint(*budgeted), Fingerprint(*plain));
}

TEST_F(FaultInjectionTest, StreamingAggregatesHonorLifecycle) {
  Rng rng(12);
  OngoingRelation r = MakeBase(rng, "A_", 40);
  PlanPtr plan = Scan(&r, "R");

  QueryContext ctx;
  ctx.Cancel();
  EXPECT_EQ(CountAtEachReferenceTime(plan, {}, &ctx).status().code(),
            StatusCode::kCancelled);
  EXPECT_EQ(CountAtEachReferenceTime(plan, ForcedParallel(2, 4), &ctx)
                .status()
                .code(),
            StatusCode::kCancelled);
  EXPECT_EQ(SumAtEachReferenceTime(plan, "A_K", {}, &ctx).status().code(),
            StatusCode::kCancelled);
  EXPECT_EQ(CountGroupedBy(plan, "A_K", {}, &ctx).status().code(),
            StatusCode::kCancelled);
  EXPECT_EQ(MaxAtEachReferenceTime(plan, "A_K", 0, {}, &ctx).status().code(),
            StatusCode::kCancelled);

  ctx.Reset();
  auto counted = CountAtEachReferenceTime(plan, {}, &ctx);
  ASSERT_TRUE(counted.ok()) << counted.status().ToString();
  auto unscoped = CountAtEachReferenceTime(plan);
  ASSERT_TRUE(unscoped.ok());
  EXPECT_EQ(*counted, *unscoped);

  // Mid-stream faults in the aggregation drain surface and recover.
  {
    ScopedFailpoint guard("exec.next", "after:2");
    auto faulty = CountAtEachReferenceTime(plan, ForcedParallel(2, 4), &ctx);
    if (!faulty.ok()) {
      EXPECT_TRUE(IsInjectedFault(faulty.status()));
    }
  }
  auto recovered = CountAtEachReferenceTime(plan, ForcedParallel(2, 4), &ctx);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(*recovered, *unscoped);
}

TEST_F(FaultInjectionTest, MaterializedViewKeepsResultAcrossFailedRefresh) {
  Rng rng(13);
  auto r = MakeBase(rng, "V_", 25);
  PlanPtr plan = Filter(Scan(&r, "R"), Lt(Col("V_ID"), Lit(int64_t{20})));
  auto view = MaterializedView::Create(plan);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  const std::multiset<std::string> want = Fingerprint(view->ongoing_result());

  QueryContext ctx;
  ctx.Cancel();
  Status st = view->Refresh(&ctx);
  EXPECT_EQ(st.code(), StatusCode::kCancelled);
  // The previous materialization keeps serving.
  EXPECT_EQ(Fingerprint(view->ongoing_result()), want);

  {
    ScopedFailpoint guard("exec.open", "always");
    ctx.Reset();
    EXPECT_TRUE(IsInjectedFault(view->Refresh(&ctx)));
    EXPECT_EQ(Fingerprint(view->ongoing_result()), want);
  }

  ctx.Reset();
  ASSERT_TRUE(view->Refresh(&ctx).ok());
  EXPECT_EQ(Fingerprint(view->ongoing_result()), want);
  EXPECT_EQ(ctx.memory_used(), 0u);
}

TEST_F(FaultInjectionTest, DeltaApplyFaultLeavesViewPreDelta) {
  // The view.delta_apply seam sits at the top of the incremental apply:
  // a triggered failure must surface as the injected fault, leave the
  // served result exactly pre-delta, and keep the SAME pending batch
  // applicable once disarmed (all-or-nothing, cursors unmoved).
  Rng rng(15);
  OngoingRelation r = MakeBase(rng, "W_", 60);
  r.EnableModificationLog();
  PlanPtr plan = Filter(Scan(&r, "R"), Lt(Col("W_ID"), Lit(int64_t{1000})));
  auto view = MaterializedView::Create(plan);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  const std::multiset<std::string> before = Fingerprint(view->ongoing_result());

  ASSERT_TRUE(
      TemporalInsert(&r,
                     {Value::Int64(500), Value::Int64(1),
                      Value::String("component-bookmarks"),
                      Value::Ongoing(OngoingInterval::SinceUntilNow(0))},
                     3, 40)
          .ok());
  {
    ScopedFailpoint guard("view.delta_apply", "always");
    Status st = view->Refresh();
    EXPECT_TRUE(IsInjectedFault(st)) << st.ToString();
    EXPECT_EQ(Fingerprint(view->ongoing_result()), before);
  }

  // Disarmed, the pending delta applies incrementally and converges on
  // the reference.
  ASSERT_TRUE(view->Refresh().ok());
  EXPECT_EQ(view->last_refresh_mode(), RefreshMode::kDelta);
  auto reference = ReferenceExecute(plan);
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(Fingerprint(view->ongoing_result()), Fingerprint(*reference));
}

// --- serving-layer seams (server/catalog.h, server/session.h) ---------------

TEST_F(FaultInjectionTest, CatalogCommitFaultNeverPublishesHalfWrite) {
  server::Catalog catalog;
  ASSERT_TRUE(catalog
                  .CreateTable("Bugs",
                               Schema({{"BID", ValueType::kInt64},
                                       {"VT", ValueType::kOngoingInterval}}))
                  .ok());
  auto row = [](int64_t bid) {
    return std::vector<Value>{
        Value::Int64(bid), Value::Ongoing(OngoingInterval::SinceUntilNow(0))};
  };
  ASSERT_TRUE(catalog.Insert("Bugs", row(1)).ok());

  server::Snapshot before = catalog.PinSnapshot();
  auto before_data = before.Get("Bugs");
  ASSERT_TRUE(before_data.ok());
  const std::multiset<std::string> want = Fingerprint(**before_data);

  {
    ScopedFailpoint guard("catalog.commit", "always");
    // Every commit kind fails with the injected fault...
    EXPECT_TRUE(IsInjectedFault(catalog.Insert("Bugs", row(2)).status()));
    EXPECT_TRUE(IsInjectedFault(
        catalog
            .TemporalDeleteWhere("Bugs", 10, [](const Tuple&) { return true; })
            .status()));
    EXPECT_TRUE(IsInjectedFault(
        catalog
            .TemporalUpdateWhere(
                "Bugs", 10, [](const Tuple&) { return true; },
                [](const Tuple& t) { return t.values(); })
            .status()));
    EXPECT_TRUE(IsInjectedFault(
        catalog.CreateTable("Other", Schema({{"X", ValueType::kInt64}}))
            .status()));
    // ...and NOTHING becomes visible: no new table, no new state, no
    // consumed sequence number — a failed commit is a perfect no-op.
    server::Snapshot after = catalog.PinSnapshot();
    EXPECT_EQ(after.commit_seq(), before.commit_seq());
    auto after_data = after.Get("Bugs");
    ASSERT_TRUE(after_data.ok());
    EXPECT_EQ(Fingerprint(**after_data), want);
    EXPECT_FALSE(after.Get("Other").ok());
  }

  // Disarmed, the very next commit takes the very next sequence.
  auto committed = catalog.Insert("Bugs", row(3));
  ASSERT_TRUE(committed.ok());
  EXPECT_EQ(*committed, before.commit_seq() + 1);

  // A probabilistic fault schedule across a write burst: exactly the
  // successful commits are visible, with gapless sequences.
  Failpoint::Find("catalog.commit")->ArmProbability(0.5, 42);
  size_t succeeded = 0;
  uint64_t last_seq = *committed;
  for (int i = 10; i < 30; ++i) {
    auto result = catalog.Insert("Bugs", row(i));
    if (result.ok()) {
      ++succeeded;
      EXPECT_EQ(*result, last_seq + 1);
      last_seq = *result;
    } else {
      EXPECT_TRUE(IsInjectedFault(result.status()));
    }
  }
  Failpoint::DisarmAll();
  auto final_data = catalog.PinSnapshot().Get("Bugs");
  ASSERT_TRUE(final_data.ok());
  EXPECT_EQ((*final_data)->size(), 2 + succeeded);
  EXPECT_EQ(catalog.commit_seq(), last_seq);
}

TEST_F(FaultInjectionTest, SnapshotPinFaultFailsStatementsCleanly) {
  server::Catalog catalog;
  server::SessionManager manager(&catalog);
  auto session = manager.CreateSession();
  ASSERT_TRUE(
      session->Execute("CREATE TABLE Bugs (BID INT, VT PERIOD)").ok());
  ASSERT_TRUE(
      session->Execute("INSERT INTO Bugs VALUES (1, PERIOD ['01/01', NOW))")
          .ok());

  {
    ScopedFailpoint guard("session.snapshot_pin", "always");
    // Both explicit pinning and the per-statement pin fail with the
    // injected fault — before any compilation or execution.
    EXPECT_TRUE(IsInjectedFault(session->PinSnapshot().status()));
    EXPECT_FALSE(session->pinned());
    auto read = session->Execute("SELECT * FROM Bugs");
    ASSERT_FALSE(read.ok());
    EXPECT_TRUE(IsInjectedFault(read.status()));
  }
  // Disarmed, the same session recovers.
  auto recovered = session->Execute("SELECT * FROM Bugs");
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ(recovered->result.affected, 1u);

  // A session that pinned BEFORE the fault arms keeps reading: its
  // snapshot is already held, so no pin (and no failpoint) is on the
  // read path.
  ASSERT_TRUE(session->PinSnapshot().ok());
  {
    ScopedFailpoint guard("session.snapshot_pin", "always");
    auto pinned_read = session->Execute("SELECT * FROM Bugs");
    ASSERT_TRUE(pinned_read.ok()) << pinned_read.status();
    EXPECT_EQ(pinned_read->result.affected, 1u);
  }
  session->Unpin();

  // Intermittent pin faults: each statement either fails with the
  // injected fault or returns the correct, current result.
  Failpoint::Find("session.snapshot_pin")->ArmProbability(0.5, 7);
  for (int i = 0; i < 10; ++i) {
    auto read = session->Execute("SELECT * FROM Bugs");
    if (read.ok()) {
      EXPECT_EQ(read->result.affected, 1u);
    } else {
      EXPECT_TRUE(IsInjectedFault(read.status()));
    }
  }
}

TEST_F(FaultInjectionTest, ServingSeamsAreRegistered) {
  // Constructing the serving types links their translation units; the
  // seams must be planted and discoverable for ONGOINGDB_FAILPOINTS.
  server::Catalog catalog;
  server::SessionManager manager(&catalog);
  auto session = manager.CreateSession();
  EXPECT_NE(Failpoint::Find("catalog.commit"), nullptr);
  EXPECT_NE(Failpoint::Find("session.snapshot_pin"), nullptr);
}

TEST_F(FaultInjectionTest, IndexBuildFaultLeavesIndexUsable) {
  // An index-nested-loop join whose index build fails mid-flight must
  // recover on the next Open: the build restarts from scratch.
  Rng rng(14);
  OngoingRelation left = MakeBase(rng, "L_", 12);
  OngoingRelation right = MakeBase(rng, "R_", 12);
  PlanPtr plan = Join(Scan(&left, "L"), Scan(&right, "R"),
                      OverlapsExpr(Col("L_VT"), Col("R_VT")), "L", "R",
                      JoinAlgorithm::kIndexNL);
  auto reference = ReferenceExecute(plan);
  ASSERT_TRUE(reference.ok());

  QueryContext ctx;
  auto compiled = Compile(plan, ExecMode::kOngoing, 0, &ctx);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  {
    ScopedFailpoint guard("index.build", "always");
    auto faulty = DrainToRelation(**compiled, &ctx);
    ASSERT_FALSE(faulty.ok());
    EXPECT_TRUE(IsInjectedFault(faulty.status()));
  }
  auto recovered = DrainToRelation(**compiled, &ctx);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(Fingerprint(*recovered), Fingerprint(*reference));
}

}  // namespace
}  // namespace ongoingdb
