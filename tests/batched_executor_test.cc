// Equivalence tests for the pull-based batched executor
// (query/physical.h) against the shared randomized plan-generator
// harness (tests/testing/plan_fuzz.h): randomized plans across all
// three forced join algorithms and both execution modes, the
// batch-boundary edge cases (results of exactly 0, 1, capacity and
// capacity + 1 tuples), re-open semantics, the parallel workers-1/2/4
// sweep, and the allocation bounds of batched join emission (this test
// links the counting allocator). Failures print their fuzz seed;
// replay with ONGOINGDB_TEST_SEED=<seed>.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "query/aggregate.h"
#include "query/executor.h"
#include "query/join.h"
#include "query/optimizer.h"
#include "query/physical.h"
#include "relation/algebra.h"
#include "testing/plan_fuzz.h"
#include "util/alloc_counter.h"
#include "util/rng.h"

namespace ongoingdb {
namespace {

using plan_fuzz::DrainCountWithCapacity;
using plan_fuzz::Fingerprint;
using plan_fuzz::ForcedParallel;
using plan_fuzz::FuzzSeeds;
using plan_fuzz::MakeBase;
using plan_fuzz::PlanFixture;
using plan_fuzz::RandomPlan;
using plan_fuzz::ReferenceExecute;
using plan_fuzz::ReferenceExecuteAt;
using plan_fuzz::WithAlgorithm;

// --- randomized equivalence -------------------------------------------------

class BatchedExecutorEquivalenceTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BatchedExecutorEquivalenceTest, MatchesReferenceInBothModes) {
  const uint64_t seed = GetParam();
  ONGOINGDB_FUZZ_SEED_TRACE(seed);
  Rng rng(seed * 7919 + 13);
  PlanFixture fx;
  PlanPtr plan = RandomPlan(rng, &fx, 3);

  auto reference = ReferenceExecute(plan);
  ASSERT_TRUE(reference.ok()) << reference.status();
  const std::multiset<std::string> expected = Fingerprint(*reference);

  for (JoinAlgorithm algorithm :
       {JoinAlgorithm::kNestedLoop, JoinAlgorithm::kHash,
        JoinAlgorithm::kSortMerge}) {
    PlanPtr forced = WithAlgorithm(plan, algorithm);
    auto batched = Execute(forced);
    ASSERT_TRUE(batched.ok()) << batched.status();
    EXPECT_EQ(Fingerprint(*batched), expected)
        << "ongoing mode, algorithm " << static_cast<int>(algorithm);
  }

  for (TimePoint rt : {TimePoint{-20}, TimePoint{15}, TimePoint{60},
                       TimePoint{140}}) {
    auto reference_at = ReferenceExecuteAt(plan, rt);
    ASSERT_TRUE(reference_at.ok()) << reference_at.status();
    const std::multiset<std::string> expected_at = Fingerprint(*reference_at);
    for (JoinAlgorithm algorithm :
         {JoinAlgorithm::kNestedLoop, JoinAlgorithm::kHash,
          JoinAlgorithm::kSortMerge}) {
      PlanPtr forced = WithAlgorithm(plan, algorithm);
      auto batched = ExecuteAtReferenceTime(forced, rt);
      ASSERT_TRUE(batched.ok()) << batched.status();
      EXPECT_EQ(Fingerprint(*batched), expected_at)
          << "clifford mode at rt=" << rt << ", algorithm "
          << static_cast<int>(algorithm);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, BatchedExecutorEquivalenceTest,
                         ::testing::ValuesIn(FuzzSeeds(30)));

// --- batch boundaries -------------------------------------------------------

TEST(BatchBoundaryTest, FilterResultsOfExactly0_1_Capacity_CapacityPlus1) {
  // With batch capacity 4, result sizes 0, 1, 4 and 5 cover "no batch",
  // "short batch", "exactly one full batch" and "full batch + remainder".
  constexpr size_t kCapacity = 4;
  Rng rng(42);
  OngoingRelation r = MakeBase(rng, "A_", 32);
  for (int64_t keep : {0, 1, 4, 5}) {
    PlanPtr plan = Filter(Scan(&r, "A"), Lt(Col("A_ID"), Lit(keep)));
    auto op = Compile(plan, ExecMode::kOngoing);
    ASSERT_TRUE(op.ok());
    EXPECT_EQ(DrainCountWithCapacity(**op, kCapacity),
              static_cast<size_t>(keep))
        << "keep=" << keep;
  }
}

TEST(BatchBoundaryTest, JoinEmissionAcrossBatchBoundaries) {
  // An equi self-join over K in [0, 4]: output sizes exceed any batch,
  // so every join algorithm must suspend and resume emission mid-probe
  // (capacity 1 forces a suspension after every single tuple).
  Rng rng(7);
  OngoingRelation r = MakeBase(rng, "A_", 24);
  OngoingRelation s = MakeBase(rng, "B_", 24);
  PlanPtr plan = Join(Scan(&r, "A"), Scan(&s, "B"),
                      Eq(Col("A_K"), Col("B_K")), "L", "R");
  auto reference = ReferenceExecute(plan);
  ASSERT_TRUE(reference.ok());
  const size_t expected = reference->size();
  ASSERT_GT(expected, TupleBatch::kDefaultCapacity / 16);
  for (JoinAlgorithm algorithm :
       {JoinAlgorithm::kNestedLoop, JoinAlgorithm::kHash,
        JoinAlgorithm::kSortMerge}) {
    for (size_t capacity : {size_t{1}, size_t{3}, size_t{64}}) {
      auto op = Compile(WithAlgorithm(plan, algorithm), ExecMode::kOngoing);
      ASSERT_TRUE(op.ok());
      EXPECT_EQ(DrainCountWithCapacity(**op, capacity), expected)
          << "algorithm " << static_cast<int>(algorithm) << " capacity "
          << capacity;
    }
  }
}

TEST(BatchBoundaryTest, ReopenRestartsTheStream) {
  // Materialized-view refresh depends on Open() fully resetting state.
  Rng rng(11);
  OngoingRelation r = MakeBase(rng, "A_", 20);
  OngoingRelation s = MakeBase(rng, "B_", 20);
  PlanPtr plan = Filter(Join(Scan(&r, "A"), Scan(&s, "B"),
                             And(Eq(Col("A_K"), Col("B_K")),
                                 OverlapsExpr(Col("A_VT"), Col("B_VT"))),
                             "L", "R"),
                        Lt(Col("A_ID"), Lit(int64_t{15})));
  auto op = Compile(plan, ExecMode::kOngoing);
  ASSERT_TRUE(op.ok());
  auto first = DrainToRelation(**op);
  auto second = DrainToRelation(**op);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_GT(first->size(), 0u);
  EXPECT_EQ(Fingerprint(*first), Fingerprint(*second));
}

// --- parallel execution ------------------------------------------------------
// The morsel-driven parallel path (query/physical.h, ParallelOptions)
// must produce the same tuple multiset as the serial reference for
// every worker count, execution mode and join algorithm. Fingerprints
// are order-normalized (multisets), since tuple order across partition
// pipelines is unspecified.

class ParallelExecutorEquivalenceTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParallelExecutorEquivalenceTest, MatchesSerialInBothModes) {
  const uint64_t seed = GetParam();
  ONGOINGDB_FUZZ_SEED_TRACE(seed);
  Rng rng(seed * 104729 + 7);
  PlanFixture fx;
  PlanPtr plan = RandomPlan(rng, &fx, 3);

  auto reference = ReferenceExecute(plan);
  ASSERT_TRUE(reference.ok()) << reference.status();
  const std::multiset<std::string> expected = Fingerprint(*reference);

  for (size_t workers : {size_t{1}, size_t{2}, size_t{4}}) {
    // Tiny morsels and no serial fallback: even the 5-tuple base
    // relations split across several claims, so partition handoff,
    // empty partitions and suspension all get exercised.
    ParallelOptions options = ForcedParallel(workers, 7);
    for (JoinAlgorithm algorithm :
         {JoinAlgorithm::kNestedLoop, JoinAlgorithm::kHash,
          JoinAlgorithm::kSortMerge}) {
      PlanPtr forced = WithAlgorithm(plan, algorithm);
      auto parallel = Execute(forced, options);
      ASSERT_TRUE(parallel.ok()) << parallel.status();
      EXPECT_EQ(Fingerprint(*parallel), expected)
          << "ongoing mode, workers " << workers << ", algorithm "
          << static_cast<int>(algorithm);
      for (TimePoint rt : {TimePoint{15}, TimePoint{140}}) {
        auto reference_at = ReferenceExecuteAt(plan, rt);
        ASSERT_TRUE(reference_at.ok()) << reference_at.status();
        auto parallel_at = ExecuteAtReferenceTime(forced, rt, options);
        ASSERT_TRUE(parallel_at.ok()) << parallel_at.status();
        EXPECT_EQ(Fingerprint(*parallel_at), Fingerprint(*reference_at))
            << "clifford mode at rt=" << rt << ", workers " << workers
            << ", algorithm " << static_cast<int>(algorithm);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, ParallelExecutorEquivalenceTest,
                         ::testing::ValuesIn(FuzzSeeds(20)));

TEST(ParallelExecutorTest, GatherTreeSurvivesReopen) {
  // Materialized-view-style reuse of a parallel tree: Open/drain/Close
  // twice on the same gather root.
  Rng rng(17);
  OngoingRelation r = MakeBase(rng, "A_", 40);
  OngoingRelation s = MakeBase(rng, "B_", 40);
  PlanPtr plan = Join(Scan(&r, "A"), Scan(&s, "B"),
                      Eq(Col("A_K"), Col("B_K")), "L", "R");
  auto op = Compile(plan, ExecMode::kOngoing, 0, ForcedParallel(3, 5));
  ASSERT_TRUE(op.ok());
  auto first = DrainToRelation(**op);
  auto second = DrainToRelation(**op);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_GT(first->size(), 0u);
  EXPECT_EQ(Fingerprint(*first), Fingerprint(*second));
}

TEST(ParallelExecutorTest, SerialFallbackKicksInOnSmallInputs) {
  // Below min_parallel_tuples the 4-argument Compile must hand back the
  // serial tree; a bare scan then still reports its borrowed relation
  // (the gather operator never does).
  Rng rng(3);
  OngoingRelation r = MakeBase(rng, "A_", 10);
  PlanPtr plan = Scan(&r, "A");
  ParallelOptions options;
  options.workers = 4;
  options.min_parallel_tuples = 1000;
  auto op = Compile(plan, ExecMode::kOngoing, 0, options);
  ASSERT_TRUE(op.ok());
  EXPECT_EQ((*op)->BorrowedRelation(), &r);
  options.min_parallel_tuples = 0;
  auto parallel_op = Compile(plan, ExecMode::kOngoing, 0, options);
  ASSERT_TRUE(parallel_op.ok());
  EXPECT_EQ((*parallel_op)->BorrowedRelation(), nullptr);
}

// --- StepFunction merge (parallel aggregation) -------------------------------

TEST(StepFunctionMergeTest, AddStepFunctionsIsAssociativeAndCommutative) {
  // The parallel COUNT/SUM path merges per-worker StepFunction partials
  // with AddStepFunctions in whatever grouping the workers finish in;
  // the merge must therefore be associative and commutative, with the
  // empty function as identity.
  Rng rng(99);
  for (int trial = 0; trial < 25; ++trial) {
    OngoingRelation r1 = MakeBase(rng, "A_", 15);
    OngoingRelation r2 = MakeBase(rng, "B_", 15);
    OngoingRelation r3 = MakeBase(rng, "C_", 15);
    const StepFunction a = CountAtEachReferenceTime(r1);
    const StepFunction b = CountAtEachReferenceTime(r2);
    const StepFunction c = CountAtEachReferenceTime(r3);
    EXPECT_EQ(AddStepFunctions(AddStepFunctions(a, b), c),
              AddStepFunctions(a, AddStepFunctions(b, c)));
    EXPECT_EQ(AddStepFunctions(a, b), AddStepFunctions(b, a));
    EXPECT_EQ(AddStepFunctions(a, StepFunction{}), a);
  }
}

TEST(StepFunctionMergeTest, PartitionedCountsMergeToTheWholeCount) {
  // Any partitioning of a relation must aggregate to the same count
  // after the merge — the correctness statement of per-worker partials.
  Rng rng(41);
  OngoingRelation whole = MakeBase(rng, "A_", 64);
  std::vector<OngoingRelation> parts(3, OngoingRelation(whole.schema()));
  for (size_t i = 0; i < whole.size(); ++i) {
    parts[i % parts.size()].AppendUnchecked(whole.tuples()[i]);
  }
  StepFunction merged;
  for (const OngoingRelation& part : parts) {
    merged = AddStepFunctions(merged, CountAtEachReferenceTime(part));
  }
  EXPECT_EQ(merged, CountAtEachReferenceTime(whole));
}

// --- streaming aggregation over the batched executor ------------------------

TEST(BatchedAggregateTest, StreamingCountMatchesMaterializedCount) {
  Rng rng(23);
  OngoingRelation r = MakeBase(rng, "A_", 40);
  PlanPtr plan = Filter(Scan(&r, "A"),
                        OverlapsExpr(Col("A_VT"),
                                     Lit(OngoingInterval::Fixed(30, 70))));
  auto materialized = Execute(plan);
  ASSERT_TRUE(materialized.ok());
  auto streamed = CountAtEachReferenceTime(plan);
  ASSERT_TRUE(streamed.ok());
  EXPECT_EQ(*streamed, CountAtEachReferenceTime(*materialized));
}

TEST(BatchedAggregateTest, StreamingPlanOverloadsMatchMaterialized) {
  // Every aggregate must stream through the batched path: the PlanPtr
  // overloads of SUM/MIN/MAX/grouped COUNT equal the relation-level
  // aggregates over the materialized query result.
  Rng rng(29);
  OngoingRelation r = MakeBase(rng, "A_", 50);
  PlanPtr plan = Filter(Scan(&r, "A"),
                        OverlapsExpr(Col("A_VT"),
                                     Lit(OngoingInterval::Fixed(20, 80))));
  auto materialized = Execute(plan);
  ASSERT_TRUE(materialized.ok());

  auto sum = SumAtEachReferenceTime(plan, "A_ID");
  ASSERT_TRUE(sum.ok()) << sum.status();
  EXPECT_EQ(*sum, *SumAtEachReferenceTime(*materialized, "A_ID"));

  auto min = MinAtEachReferenceTime(plan, "A_ID", -1);
  ASSERT_TRUE(min.ok()) << min.status();
  EXPECT_EQ(*min, *MinAtEachReferenceTime(*materialized, "A_ID", -1));

  auto max = MaxAtEachReferenceTime(plan, "A_ID", -1);
  ASSERT_TRUE(max.ok()) << max.status();
  EXPECT_EQ(*max, *MaxAtEachReferenceTime(*materialized, "A_ID", -1));

  auto grouped = CountGroupedBy(plan, "A_K");
  ASSERT_TRUE(grouped.ok()) << grouped.status();
  auto grouped_ref = CountGroupedBy(*materialized, "A_K");
  ASSERT_TRUE(grouped_ref.ok());
  ASSERT_EQ(grouped->size(), grouped_ref->size());
  std::map<std::string, StepFunction> by_group;
  for (const GroupedCount& g : *grouped_ref) {
    by_group.emplace(g.group.ToString(), g.count);
  }
  for (const GroupedCount& g : *grouped) {
    ASSERT_TRUE(by_group.count(g.group.ToString()) > 0);
    EXPECT_EQ(g.count, by_group.at(g.group.ToString()));
  }
}

TEST(BatchedAggregateTest, ParallelAggregatesMatchSerial) {
  // Per-worker partials + associative merge must equal the serial
  // single-stream aggregation for every aggregate.
  Rng rng(31);
  OngoingRelation r = MakeBase(rng, "A_", 60);
  OngoingRelation s = MakeBase(rng, "B_", 60);
  PlanPtr plan = Join(Scan(&r, "A"), Scan(&s, "B"),
                      Eq(Col("A_K"), Col("B_K")), "L", "R");
  ParallelOptions par = ForcedParallel(4, 9);

  auto count_serial = CountAtEachReferenceTime(plan);
  auto count_parallel = CountAtEachReferenceTime(plan, par);
  ASSERT_TRUE(count_serial.ok());
  ASSERT_TRUE(count_parallel.ok()) << count_parallel.status();
  EXPECT_EQ(*count_parallel, *count_serial);

  auto sum_serial = SumAtEachReferenceTime(plan, "A_ID");
  auto sum_parallel = SumAtEachReferenceTime(plan, "A_ID", par);
  ASSERT_TRUE(sum_serial.ok());
  ASSERT_TRUE(sum_parallel.ok()) << sum_parallel.status();
  EXPECT_EQ(*sum_parallel, *sum_serial);

  auto min_serial = MinAtEachReferenceTime(plan, "B_ID", -7);
  auto min_parallel = MinAtEachReferenceTime(plan, "B_ID", -7, par);
  ASSERT_TRUE(min_serial.ok());
  ASSERT_TRUE(min_parallel.ok()) << min_parallel.status();
  EXPECT_EQ(*min_parallel, *min_serial);

  auto max_serial = MaxAtEachReferenceTime(plan, "B_ID", -7);
  auto max_parallel = MaxAtEachReferenceTime(plan, "B_ID", -7, par);
  ASSERT_TRUE(max_serial.ok());
  ASSERT_TRUE(max_parallel.ok()) << max_parallel.status();
  EXPECT_EQ(*max_parallel, *max_serial);

  auto grouped_serial = CountGroupedBy(plan, "A_K");
  auto grouped_parallel = CountGroupedBy(plan, "A_K", par);
  ASSERT_TRUE(grouped_serial.ok());
  ASSERT_TRUE(grouped_parallel.ok()) << grouped_parallel.status();
  ASSERT_EQ(grouped_parallel->size(), grouped_serial->size());
  for (size_t i = 0; i < grouped_serial->size(); ++i) {
    EXPECT_EQ((*grouped_parallel)[i].group, (*grouped_serial)[i].group);
    EXPECT_EQ((*grouped_parallel)[i].count, (*grouped_serial)[i].count);
  }
}

// --- allocation bounds ------------------------------------------------------

TEST(BatchedEmissionAllocTest, EmitDominatedJoinStaysNearOneAllocPerTuple) {
  // A string-keyed equi join whose output is large relative to the
  // inputs: the emit path dominates. Per emitted tuple the engine should
  // pay one heap allocation (the drained tuple's value vector) — the
  // shared string payloads and the recycled batch slots eliminate the
  // per-value copies, and the flat hash table eliminates the per-build-
  // tuple node. The pre-batched executor paid ~6 allocations per
  // emitted tuple on this shape.
  const size_t n = 1500;
  Schema schema({{"K", ValueType::kString},
                 {"P", ValueType::kString},
                 {"VT", ValueType::kOngoingInterval}});
  auto make = [&](uint64_t seed, const std::string& prefix) {
    Rng rng(seed);
    OngoingRelation r(schema);
    for (size_t i = 0; i < n; ++i) {
      // Long keys (beyond small-string optimization) from a pool sized
      // so the join emits roughly one tuple per probe.
      std::string key = "join-key-component-" + std::to_string(i % n);
      EXPECT_TRUE(r.Insert({Value::String(std::move(key)),
                            Value::String(prefix +
                                          "-payload-string-beyond-sso-" +
                                          std::to_string(rng.Uniform(0, 9))),
                            Value::Ongoing(OngoingInterval::SinceUntilNow(
                                rng.Uniform(0, 50)))})
                      .ok());
    }
    return r;
  };
  OngoingRelation left = make(1, "left");
  OngoingRelation right = make(2, "right");
  ExprPtr pred = Eq(Col("L.K"), Col("R.K"));

  // Warm-up outside the measured scope (thread-local lazies, etc.).
  auto warm = HashJoin(left, right, pred, "L", "R");
  ASSERT_TRUE(warm.ok());
  const size_t out_size = warm->size();
  ASSERT_EQ(out_size, n);

  AllocScope scope;
  auto result = HashJoin(left, right, pred, "L", "R");
  uint64_t allocs = scope.count();
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), out_size);
  // One vector per drained tuple, plus O(1) table/batch overhead and the
  // result relation's geometric growth.
  EXPECT_LT(allocs, 2.0 * static_cast<double>(out_size))
      << "allocs=" << allocs << " for " << out_size << " emitted tuples";
}

}  // namespace
}  // namespace ongoingdb
