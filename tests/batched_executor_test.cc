// Equivalence tests for the pull-based batched executor
// (query/physical.h) against a reference evaluator built from the
// independently tested relational algebra primitives: randomized plans
// across all three join algorithms and both execution modes, the
// batch-boundary edge cases (results of exactly 0, 1, capacity and
// capacity + 1 tuples), re-open semantics, and the allocation bounds of
// batched join emission (this test links the counting allocator).
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "query/aggregate.h"
#include "query/executor.h"
#include "query/join.h"
#include "query/optimizer.h"
#include "query/physical.h"
#include "relation/algebra.h"
#include "util/alloc_counter.h"
#include "util/rng.h"

namespace ongoingdb {
namespace {

// --- reference evaluator ----------------------------------------------------
// Materializes every node with the algebra's nested-loop primitives and
// evaluates predicates unsplit — a deliberately different code path from
// the batched operators (no split, no keys, no batches).

std::vector<Value> ConcatValues(const Tuple& r, const Tuple& s) {
  std::vector<Value> values;
  values.reserve(r.num_values() + s.num_values());
  for (const Value& v : r.values()) values.push_back(v);
  for (const Value& v : s.values()) values.push_back(v);
  return values;
}

Result<OngoingRelation> ReferenceExecute(const PlanPtr& plan) {
  switch (plan->kind()) {
    case PlanKind::kScan:
      return static_cast<const ScanNode*>(plan.get())->relation();
    case PlanKind::kFilter: {
      const auto* node = static_cast<const FilterNode*>(plan.get());
      ONGOINGDB_ASSIGN_OR_RETURN(OngoingRelation in,
                                 ReferenceExecute(node->child()));
      OngoingRelation out(in.schema());
      for (const Tuple& t : in.tuples()) {
        ONGOINGDB_ASSIGN_OR_RETURN(
            OngoingBoolean b, node->predicate()->EvalPredicate(in.schema(), t));
        IntervalSet rt = t.rt().Intersect(b.st());
        if (!rt.IsEmpty()) out.AppendUnchecked(Tuple(t.values(), std::move(rt)));
      }
      return out;
    }
    case PlanKind::kProject: {
      const auto* node = static_cast<const ProjectNode*>(plan.get());
      ONGOINGDB_ASSIGN_OR_RETURN(OngoingRelation in,
                                 ReferenceExecute(node->child()));
      return Project(in, node->names());
    }
    case PlanKind::kJoin: {
      const auto* node = static_cast<const JoinNode*>(plan.get());
      ONGOINGDB_ASSIGN_OR_RETURN(OngoingRelation left,
                                 ReferenceExecute(node->left()));
      ONGOINGDB_ASSIGN_OR_RETURN(OngoingRelation right,
                                 ReferenceExecute(node->right()));
      Schema joined = left.schema().Concat(right.schema(), node->left_prefix(),
                                           node->right_prefix());
      OngoingRelation out(joined);
      for (const Tuple& lt : left.tuples()) {
        for (const Tuple& st : right.tuples()) {
          Tuple c(ConcatValues(lt, st), lt.rt().Intersect(st.rt()));
          if (c.rt().IsEmpty()) continue;
          ONGOINGDB_ASSIGN_OR_RETURN(
              OngoingBoolean b, node->predicate()->EvalPredicate(joined, c));
          IntervalSet rt = c.rt().Intersect(b.st());
          if (rt.IsEmpty()) continue;
          out.AppendUnchecked(Tuple(c.values(), std::move(rt)));
        }
      }
      return out;
    }
  }
  return Status::Internal("unknown plan kind");
}

Result<OngoingRelation> ReferenceExecuteAt(const PlanPtr& plan, TimePoint rt) {
  switch (plan->kind()) {
    case PlanKind::kScan:
      return InstantiateRelation(
          static_cast<const ScanNode*>(plan.get())->relation(), rt);
    case PlanKind::kFilter: {
      const auto* node = static_cast<const FilterNode*>(plan.get());
      ONGOINGDB_ASSIGN_OR_RETURN(OngoingRelation in,
                                 ReferenceExecuteAt(node->child(), rt));
      OngoingRelation out(in.schema());
      for (const Tuple& t : in.tuples()) {
        ONGOINGDB_ASSIGN_OR_RETURN(
            bool keep, node->predicate()->EvalPredicateFixed(in.schema(), t, rt));
        if (keep) out.AppendUnchecked(t);
      }
      return out;
    }
    case PlanKind::kProject: {
      const auto* node = static_cast<const ProjectNode*>(plan.get());
      ONGOINGDB_ASSIGN_OR_RETURN(OngoingRelation in,
                                 ReferenceExecuteAt(node->child(), rt));
      return Project(in, node->names());
    }
    case PlanKind::kJoin: {
      const auto* node = static_cast<const JoinNode*>(plan.get());
      ONGOINGDB_ASSIGN_OR_RETURN(OngoingRelation left,
                                 ReferenceExecuteAt(node->left(), rt));
      ONGOINGDB_ASSIGN_OR_RETURN(OngoingRelation right,
                                 ReferenceExecuteAt(node->right(), rt));
      Schema joined = left.schema().Concat(right.schema(), node->left_prefix(),
                                           node->right_prefix());
      OngoingRelation out(joined);
      for (const Tuple& lt : left.tuples()) {
        for (const Tuple& st : right.tuples()) {
          Tuple c(ConcatValues(lt, st));
          ONGOINGDB_ASSIGN_OR_RETURN(
              bool keep, node->predicate()->EvalPredicateFixed(joined, c, rt));
          if (keep) out.AppendUnchecked(std::move(c));
        }
      }
      return out;
    }
  }
  return Status::Internal("unknown plan kind");
}

// Tuple multiset incl. RT: interval sets are normalized, so equal sets
// render identically.
std::multiset<std::string> Fingerprint(const OngoingRelation& r) {
  std::multiset<std::string> rows;
  for (const Tuple& t : r.tuples()) rows.insert(t.ToString());
  return rows;
}

// --- randomized plan generator ----------------------------------------------
// Base relations carry globally unique attribute names, so concatenated
// schemas never qualify and generated predicates stay resolvable at any
// plan depth.

const std::vector<std::string>& StringPool() {
  static const std::vector<std::string> pool = {
      "component-spam-filter", "component-crash-reporter",
      "component-preferences", "component-bookmarks"};
  return pool;
}

OngoingRelation MakeBase(Rng& rng, const std::string& prefix, size_t n) {
  OngoingRelation r(Schema({{prefix + "ID", ValueType::kInt64},
                            {prefix + "K", ValueType::kInt64},
                            {prefix + "S", ValueType::kString},
                            {prefix + "VT", ValueType::kOngoingInterval}}));
  for (size_t i = 0; i < n; ++i) {
    OngoingInterval vt;
    if (rng.Bernoulli(0.3)) {
      vt = OngoingInterval::SinceUntilNow(rng.Uniform(0, 100));
    } else if (rng.Bernoulli(0.2)) {
      vt = OngoingInterval::FromNowUntil(rng.Uniform(0, 100));
    } else {
      TimePoint s = rng.Uniform(0, 100);
      vt = OngoingInterval::Fixed(s, s + rng.Uniform(1, 40));
    }
    EXPECT_TRUE(
        r.Insert({Value::Int64(static_cast<int64_t>(i)),
                  Value::Int64(rng.Uniform(0, 4)),
                  Value::String(StringPool()[static_cast<size_t>(
                      rng.Uniform(0, 3))]),
                  Value::Ongoing(vt)})
            .ok());
  }
  return r;
}

std::vector<std::string> NamesOfType(const Schema& schema, ValueType type) {
  std::vector<std::string> names;
  for (const Attribute& a : schema.attributes()) {
    if (a.type == type) names.push_back(a.name);
  }
  return names;
}

template <typename T>
const T& PickOne(Rng& rng, const std::vector<T>& pool) {
  return pool[static_cast<size_t>(
      rng.Uniform(0, static_cast<int64_t>(pool.size()) - 1))];
}

ExprPtr RandomFilterPredicate(Rng& rng, const Schema& schema) {
  std::vector<ExprPtr> conjuncts;
  auto ints = NamesOfType(schema, ValueType::kInt64);
  auto strs = NamesOfType(schema, ValueType::kString);
  auto vts = NamesOfType(schema, ValueType::kOngoingInterval);
  if (!ints.empty() && rng.Bernoulli(0.7)) {
    conjuncts.push_back(
        Lt(Col(PickOne(rng, ints)), Lit(rng.Uniform(0, 12))));
  }
  if (!strs.empty() && rng.Bernoulli(0.3)) {
    conjuncts.push_back(Eq(Col(PickOne(rng, strs)),
                           Lit(Value::String(PickOne(rng, StringPool())))));
  }
  if (!vts.empty() && rng.Bernoulli(0.6)) {
    TimePoint s = rng.Uniform(0, 90);
    conjuncts.push_back(
        OverlapsExpr(Col(PickOne(rng, vts)),
                     Lit(OngoingInterval::Fixed(s, s + rng.Uniform(5, 40)))));
  }
  if (conjuncts.empty()) {
    conjuncts.push_back(Lt(Lit(int64_t{0}), Lit(int64_t{1})));
  }
  return AndAll(conjuncts);
}

ExprPtr RandomJoinPredicate(Rng& rng, const Schema& left,
                            const Schema& right) {
  std::vector<ExprPtr> conjuncts;
  auto lints = NamesOfType(left, ValueType::kInt64);
  auto rints = NamesOfType(right, ValueType::kInt64);
  auto lstrs = NamesOfType(left, ValueType::kString);
  auto rstrs = NamesOfType(right, ValueType::kString);
  auto lvts = NamesOfType(left, ValueType::kOngoingInterval);
  auto rvts = NamesOfType(right, ValueType::kOngoingInterval);
  if (!lints.empty() && !rints.empty() && rng.Bernoulli(0.8)) {
    conjuncts.push_back(
        Eq(Col(PickOne(rng, lints)), Col(PickOne(rng, rints))));
  }
  if (!lstrs.empty() && !rstrs.empty() && rng.Bernoulli(0.3)) {
    conjuncts.push_back(
        Eq(Col(PickOne(rng, lstrs)), Col(PickOne(rng, rstrs))));
  }
  if (!lvts.empty() && !rvts.empty() && rng.Bernoulli(0.6)) {
    conjuncts.push_back(
        OverlapsExpr(Col(PickOne(rng, lvts)), Col(PickOne(rng, rvts))));
  }
  if (conjuncts.empty()) {
    // Degenerate cross product (keeps the generator total when
    // projections dropped every joinable column).
    conjuncts.push_back(Lt(Lit(int64_t{0}), Lit(int64_t{1})));
  }
  return AndAll(conjuncts);
}

// Owns the base relations a generated plan borrows.
struct PlanFixture {
  std::vector<std::unique_ptr<OngoingRelation>> relations;
  int join_counter = 0;
};

PlanPtr RandomPlan(Rng& rng, PlanFixture* fx, int budget) {
  if (budget <= 0 || rng.Bernoulli(0.25)) {
    auto rel = std::make_unique<OngoingRelation>(
        MakeBase(rng, "R" + std::to_string(fx->relations.size()) + "_",
                 static_cast<size_t>(rng.Uniform(5, 14))));
    fx->relations.push_back(std::move(rel));
    PlanPtr scan = Scan(fx->relations.back().get(),
                        "R" + std::to_string(fx->relations.size() - 1));
    return scan;
  }
  const double roll = rng.UniformReal();
  if (roll < 0.35) {
    PlanPtr child = RandomPlan(rng, fx, budget - 1);
    Schema schema = *OutputSchema(child);
    return Filter(std::move(child), RandomFilterPredicate(rng, schema));
  }
  if (roll < 0.55) {
    PlanPtr child = RandomPlan(rng, fx, budget - 1);
    Schema schema = *OutputSchema(child);
    // Keep a random non-empty prefix-free subset, preserving order.
    std::vector<std::string> names;
    for (const Attribute& a : schema.attributes()) {
      if (rng.Bernoulli(0.6)) names.push_back(a.name);
    }
    if (names.empty()) names.push_back(schema.attribute(0).name);
    return ProjectPlan(std::move(child), std::move(names));
  }
  PlanPtr left = RandomPlan(rng, fx, budget - 1);
  PlanPtr right = RandomPlan(rng, fx, budget - 1);
  Schema ls = *OutputSchema(left);
  Schema rs = *OutputSchema(right);
  const int id = fx->join_counter++;
  return Join(std::move(left), std::move(right),
              RandomJoinPredicate(rng, ls, rs), "L" + std::to_string(id),
              "R" + std::to_string(id));
}

// Rebuilds the plan with every join forced to `algorithm`.
PlanPtr WithAlgorithm(const PlanPtr& plan, JoinAlgorithm algorithm) {
  switch (plan->kind()) {
    case PlanKind::kScan:
      return plan;
    case PlanKind::kFilter: {
      const auto* node = static_cast<const FilterNode*>(plan.get());
      return Filter(WithAlgorithm(node->child(), algorithm),
                    node->predicate());
    }
    case PlanKind::kProject: {
      const auto* node = static_cast<const ProjectNode*>(plan.get());
      return ProjectPlan(WithAlgorithm(node->child(), algorithm),
                         node->names());
    }
    case PlanKind::kJoin: {
      const auto* node = static_cast<const JoinNode*>(plan.get());
      return Join(WithAlgorithm(node->left(), algorithm),
                  WithAlgorithm(node->right(), algorithm), node->predicate(),
                  node->left_prefix(), node->right_prefix(), algorithm);
    }
  }
  return plan;
}

// --- randomized equivalence -------------------------------------------------

class BatchedExecutorEquivalenceTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BatchedExecutorEquivalenceTest, MatchesReferenceInBothModes) {
  Rng rng(GetParam() * 7919 + 13);
  PlanFixture fx;
  PlanPtr plan = RandomPlan(rng, &fx, 3);

  auto reference = ReferenceExecute(plan);
  ASSERT_TRUE(reference.ok()) << reference.status();
  const std::multiset<std::string> expected = Fingerprint(*reference);

  for (JoinAlgorithm algorithm :
       {JoinAlgorithm::kNestedLoop, JoinAlgorithm::kHash,
        JoinAlgorithm::kSortMerge}) {
    PlanPtr forced = WithAlgorithm(plan, algorithm);
    auto batched = Execute(forced);
    ASSERT_TRUE(batched.ok()) << batched.status();
    EXPECT_EQ(Fingerprint(*batched), expected)
        << "ongoing mode, algorithm " << static_cast<int>(algorithm);
  }

  for (TimePoint rt : {TimePoint{-20}, TimePoint{15}, TimePoint{60},
                       TimePoint{140}}) {
    auto reference_at = ReferenceExecuteAt(plan, rt);
    ASSERT_TRUE(reference_at.ok()) << reference_at.status();
    const std::multiset<std::string> expected_at = Fingerprint(*reference_at);
    for (JoinAlgorithm algorithm :
         {JoinAlgorithm::kNestedLoop, JoinAlgorithm::kHash,
          JoinAlgorithm::kSortMerge}) {
      PlanPtr forced = WithAlgorithm(plan, algorithm);
      auto batched = ExecuteAtReferenceTime(forced, rt);
      ASSERT_TRUE(batched.ok()) << batched.status();
      EXPECT_EQ(Fingerprint(*batched), expected_at)
          << "clifford mode at rt=" << rt << ", algorithm "
          << static_cast<int>(algorithm);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, BatchedExecutorEquivalenceTest,
                         ::testing::Range<uint64_t>(0, 30));

// --- batch boundaries -------------------------------------------------------

// Drains `op` with caller-chosen batch capacity; verifies the protocol
// (no empty batch mid-stream, every tuple within capacity) and returns
// the total tuple count.
size_t DrainCountWithCapacity(PhysicalOperator& op, size_t capacity) {
  EXPECT_TRUE(op.Open().ok());
  TupleBatch batch(capacity);
  size_t total = 0;
  while (true) {
    EXPECT_TRUE(op.Next(&batch).ok());
    if (batch.empty()) break;
    EXPECT_LE(batch.size(), capacity);
    total += batch.size();
  }
  op.Close();
  return total;
}

TEST(BatchBoundaryTest, FilterResultsOfExactly0_1_Capacity_CapacityPlus1) {
  // With batch capacity 4, result sizes 0, 1, 4 and 5 cover "no batch",
  // "short batch", "exactly one full batch" and "full batch + remainder".
  constexpr size_t kCapacity = 4;
  Rng rng(42);
  OngoingRelation r = MakeBase(rng, "A_", 32);
  for (int64_t keep : {0, 1, 4, 5}) {
    PlanPtr plan = Filter(Scan(&r, "A"), Lt(Col("A_ID"), Lit(keep)));
    auto op = Compile(plan, ExecMode::kOngoing);
    ASSERT_TRUE(op.ok());
    EXPECT_EQ(DrainCountWithCapacity(**op, kCapacity),
              static_cast<size_t>(keep))
        << "keep=" << keep;
  }
}

TEST(BatchBoundaryTest, JoinEmissionAcrossBatchBoundaries) {
  // An equi self-join over K in [0, 4]: output sizes exceed any batch,
  // so every join algorithm must suspend and resume emission mid-probe
  // (capacity 1 forces a suspension after every single tuple).
  Rng rng(7);
  OngoingRelation r = MakeBase(rng, "A_", 24);
  OngoingRelation s = MakeBase(rng, "B_", 24);
  PlanPtr plan = Join(Scan(&r, "A"), Scan(&s, "B"),
                      Eq(Col("A_K"), Col("B_K")), "L", "R");
  auto reference = ReferenceExecute(plan);
  ASSERT_TRUE(reference.ok());
  const size_t expected = reference->size();
  ASSERT_GT(expected, TupleBatch::kDefaultCapacity / 16);
  for (JoinAlgorithm algorithm :
       {JoinAlgorithm::kNestedLoop, JoinAlgorithm::kHash,
        JoinAlgorithm::kSortMerge}) {
    for (size_t capacity : {size_t{1}, size_t{3}, size_t{64}}) {
      auto op = Compile(WithAlgorithm(plan, algorithm), ExecMode::kOngoing);
      ASSERT_TRUE(op.ok());
      EXPECT_EQ(DrainCountWithCapacity(**op, capacity), expected)
          << "algorithm " << static_cast<int>(algorithm) << " capacity "
          << capacity;
    }
  }
}

TEST(BatchBoundaryTest, ReopenRestartsTheStream) {
  // Materialized-view refresh depends on Open() fully resetting state.
  Rng rng(11);
  OngoingRelation r = MakeBase(rng, "A_", 20);
  OngoingRelation s = MakeBase(rng, "B_", 20);
  PlanPtr plan = Filter(Join(Scan(&r, "A"), Scan(&s, "B"),
                             And(Eq(Col("A_K"), Col("B_K")),
                                 OverlapsExpr(Col("A_VT"), Col("B_VT"))),
                             "L", "R"),
                        Lt(Col("A_ID"), Lit(int64_t{15})));
  auto op = Compile(plan, ExecMode::kOngoing);
  ASSERT_TRUE(op.ok());
  auto first = DrainToRelation(**op);
  auto second = DrainToRelation(**op);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_GT(first->size(), 0u);
  EXPECT_EQ(Fingerprint(*first), Fingerprint(*second));
}

// --- parallel execution ------------------------------------------------------
// The morsel-driven parallel path (query/physical.h, ParallelOptions)
// must produce the same tuple multiset as the serial reference for
// every worker count, execution mode and join algorithm. Fingerprints
// are order-normalized (multisets), since tuple order across partition
// pipelines is unspecified.

class ParallelExecutorEquivalenceTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParallelExecutorEquivalenceTest, MatchesSerialInBothModes) {
  Rng rng(GetParam() * 104729 + 7);
  PlanFixture fx;
  PlanPtr plan = RandomPlan(rng, &fx, 3);

  auto reference = ReferenceExecute(plan);
  ASSERT_TRUE(reference.ok()) << reference.status();
  const std::multiset<std::string> expected = Fingerprint(*reference);

  for (size_t workers : {size_t{1}, size_t{2}, size_t{4}}) {
    ParallelOptions options;
    options.workers = workers;
    // Tiny morsels and no serial fallback: even the 5-tuple base
    // relations split across several claims, so partition handoff,
    // empty partitions and suspension all get exercised.
    options.morsel_size = 7;
    options.min_parallel_tuples = 0;
    for (JoinAlgorithm algorithm :
         {JoinAlgorithm::kNestedLoop, JoinAlgorithm::kHash,
          JoinAlgorithm::kSortMerge}) {
      PlanPtr forced = WithAlgorithm(plan, algorithm);
      auto parallel = Execute(forced, options);
      ASSERT_TRUE(parallel.ok()) << parallel.status();
      EXPECT_EQ(Fingerprint(*parallel), expected)
          << "ongoing mode, workers " << workers << ", algorithm "
          << static_cast<int>(algorithm);
      for (TimePoint rt : {TimePoint{15}, TimePoint{140}}) {
        auto reference_at = ReferenceExecuteAt(plan, rt);
        ASSERT_TRUE(reference_at.ok()) << reference_at.status();
        auto parallel_at = ExecuteAtReferenceTime(forced, rt, options);
        ASSERT_TRUE(parallel_at.ok()) << parallel_at.status();
        EXPECT_EQ(Fingerprint(*parallel_at), Fingerprint(*reference_at))
            << "clifford mode at rt=" << rt << ", workers " << workers
            << ", algorithm " << static_cast<int>(algorithm);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, ParallelExecutorEquivalenceTest,
                         ::testing::Range<uint64_t>(0, 20));

TEST(ParallelExecutorTest, GatherTreeSurvivesReopen) {
  // Materialized-view-style reuse of a parallel tree: Open/drain/Close
  // twice on the same gather root.
  Rng rng(17);
  OngoingRelation r = MakeBase(rng, "A_", 40);
  OngoingRelation s = MakeBase(rng, "B_", 40);
  PlanPtr plan = Join(Scan(&r, "A"), Scan(&s, "B"),
                      Eq(Col("A_K"), Col("B_K")), "L", "R");
  ParallelOptions options;
  options.workers = 3;
  options.morsel_size = 5;
  options.min_parallel_tuples = 0;
  auto op = Compile(plan, ExecMode::kOngoing, 0, options);
  ASSERT_TRUE(op.ok());
  auto first = DrainToRelation(**op);
  auto second = DrainToRelation(**op);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_GT(first->size(), 0u);
  EXPECT_EQ(Fingerprint(*first), Fingerprint(*second));
}

TEST(ParallelExecutorTest, SerialFallbackKicksInOnSmallInputs) {
  // Below min_parallel_tuples the 4-argument Compile must hand back the
  // serial tree; a bare scan then still reports its borrowed relation
  // (the gather operator never does).
  Rng rng(3);
  OngoingRelation r = MakeBase(rng, "A_", 10);
  PlanPtr plan = Scan(&r, "A");
  ParallelOptions options;
  options.workers = 4;
  options.min_parallel_tuples = 1000;
  auto op = Compile(plan, ExecMode::kOngoing, 0, options);
  ASSERT_TRUE(op.ok());
  EXPECT_EQ((*op)->BorrowedRelation(), &r);
  options.min_parallel_tuples = 0;
  auto parallel_op = Compile(plan, ExecMode::kOngoing, 0, options);
  ASSERT_TRUE(parallel_op.ok());
  EXPECT_EQ((*parallel_op)->BorrowedRelation(), nullptr);
}

// --- StepFunction merge (parallel aggregation) -------------------------------

TEST(StepFunctionMergeTest, AddStepFunctionsIsAssociativeAndCommutative) {
  // The parallel COUNT/SUM path merges per-worker StepFunction partials
  // with AddStepFunctions in whatever grouping the workers finish in;
  // the merge must therefore be associative and commutative, with the
  // empty function as identity.
  Rng rng(99);
  for (int trial = 0; trial < 25; ++trial) {
    OngoingRelation r1 = MakeBase(rng, "A_", 15);
    OngoingRelation r2 = MakeBase(rng, "B_", 15);
    OngoingRelation r3 = MakeBase(rng, "C_", 15);
    const StepFunction a = CountAtEachReferenceTime(r1);
    const StepFunction b = CountAtEachReferenceTime(r2);
    const StepFunction c = CountAtEachReferenceTime(r3);
    EXPECT_EQ(AddStepFunctions(AddStepFunctions(a, b), c),
              AddStepFunctions(a, AddStepFunctions(b, c)));
    EXPECT_EQ(AddStepFunctions(a, b), AddStepFunctions(b, a));
    EXPECT_EQ(AddStepFunctions(a, StepFunction{}), a);
  }
}

TEST(StepFunctionMergeTest, PartitionedCountsMergeToTheWholeCount) {
  // Any partitioning of a relation must aggregate to the same count
  // after the merge — the correctness statement of per-worker partials.
  Rng rng(41);
  OngoingRelation whole = MakeBase(rng, "A_", 64);
  std::vector<OngoingRelation> parts(3, OngoingRelation(whole.schema()));
  for (size_t i = 0; i < whole.size(); ++i) {
    parts[i % parts.size()].AppendUnchecked(whole.tuples()[i]);
  }
  StepFunction merged;
  for (const OngoingRelation& part : parts) {
    merged = AddStepFunctions(merged, CountAtEachReferenceTime(part));
  }
  EXPECT_EQ(merged, CountAtEachReferenceTime(whole));
}

// --- streaming aggregation over the batched executor ------------------------

TEST(BatchedAggregateTest, StreamingCountMatchesMaterializedCount) {
  Rng rng(23);
  OngoingRelation r = MakeBase(rng, "A_", 40);
  PlanPtr plan = Filter(Scan(&r, "A"),
                        OverlapsExpr(Col("A_VT"),
                                     Lit(OngoingInterval::Fixed(30, 70))));
  auto materialized = Execute(plan);
  ASSERT_TRUE(materialized.ok());
  auto streamed = CountAtEachReferenceTime(plan);
  ASSERT_TRUE(streamed.ok());
  EXPECT_EQ(*streamed, CountAtEachReferenceTime(*materialized));
}

TEST(BatchedAggregateTest, StreamingPlanOverloadsMatchMaterialized) {
  // Every aggregate must stream through the batched path: the PlanPtr
  // overloads of SUM/MIN/MAX/grouped COUNT equal the relation-level
  // aggregates over the materialized query result.
  Rng rng(29);
  OngoingRelation r = MakeBase(rng, "A_", 50);
  PlanPtr plan = Filter(Scan(&r, "A"),
                        OverlapsExpr(Col("A_VT"),
                                     Lit(OngoingInterval::Fixed(20, 80))));
  auto materialized = Execute(plan);
  ASSERT_TRUE(materialized.ok());

  auto sum = SumAtEachReferenceTime(plan, "A_ID");
  ASSERT_TRUE(sum.ok()) << sum.status();
  EXPECT_EQ(*sum, *SumAtEachReferenceTime(*materialized, "A_ID"));

  auto min = MinAtEachReferenceTime(plan, "A_ID", -1);
  ASSERT_TRUE(min.ok()) << min.status();
  EXPECT_EQ(*min, *MinAtEachReferenceTime(*materialized, "A_ID", -1));

  auto max = MaxAtEachReferenceTime(plan, "A_ID", -1);
  ASSERT_TRUE(max.ok()) << max.status();
  EXPECT_EQ(*max, *MaxAtEachReferenceTime(*materialized, "A_ID", -1));

  auto grouped = CountGroupedBy(plan, "A_K");
  ASSERT_TRUE(grouped.ok()) << grouped.status();
  auto grouped_ref = CountGroupedBy(*materialized, "A_K");
  ASSERT_TRUE(grouped_ref.ok());
  ASSERT_EQ(grouped->size(), grouped_ref->size());
  std::map<std::string, StepFunction> by_group;
  for (const GroupedCount& g : *grouped_ref) {
    by_group.emplace(g.group.ToString(), g.count);
  }
  for (const GroupedCount& g : *grouped) {
    ASSERT_TRUE(by_group.count(g.group.ToString()) > 0);
    EXPECT_EQ(g.count, by_group.at(g.group.ToString()));
  }
}

TEST(BatchedAggregateTest, ParallelAggregatesMatchSerial) {
  // Per-worker partials + associative merge must equal the serial
  // single-stream aggregation for every aggregate.
  Rng rng(31);
  OngoingRelation r = MakeBase(rng, "A_", 60);
  OngoingRelation s = MakeBase(rng, "B_", 60);
  PlanPtr plan = Join(Scan(&r, "A"), Scan(&s, "B"),
                      Eq(Col("A_K"), Col("B_K")), "L", "R");
  ParallelOptions par;
  par.workers = 4;
  par.morsel_size = 9;
  par.min_parallel_tuples = 0;

  auto count_serial = CountAtEachReferenceTime(plan);
  auto count_parallel = CountAtEachReferenceTime(plan, par);
  ASSERT_TRUE(count_serial.ok());
  ASSERT_TRUE(count_parallel.ok()) << count_parallel.status();
  EXPECT_EQ(*count_parallel, *count_serial);

  auto sum_serial = SumAtEachReferenceTime(plan, "A_ID");
  auto sum_parallel = SumAtEachReferenceTime(plan, "A_ID", par);
  ASSERT_TRUE(sum_serial.ok());
  ASSERT_TRUE(sum_parallel.ok()) << sum_parallel.status();
  EXPECT_EQ(*sum_parallel, *sum_serial);

  auto min_serial = MinAtEachReferenceTime(plan, "B_ID", -7);
  auto min_parallel = MinAtEachReferenceTime(plan, "B_ID", -7, par);
  ASSERT_TRUE(min_serial.ok());
  ASSERT_TRUE(min_parallel.ok()) << min_parallel.status();
  EXPECT_EQ(*min_parallel, *min_serial);

  auto max_serial = MaxAtEachReferenceTime(plan, "B_ID", -7);
  auto max_parallel = MaxAtEachReferenceTime(plan, "B_ID", -7, par);
  ASSERT_TRUE(max_serial.ok());
  ASSERT_TRUE(max_parallel.ok()) << max_parallel.status();
  EXPECT_EQ(*max_parallel, *max_serial);

  auto grouped_serial = CountGroupedBy(plan, "A_K");
  auto grouped_parallel = CountGroupedBy(plan, "A_K", par);
  ASSERT_TRUE(grouped_serial.ok());
  ASSERT_TRUE(grouped_parallel.ok()) << grouped_parallel.status();
  ASSERT_EQ(grouped_parallel->size(), grouped_serial->size());
  for (size_t i = 0; i < grouped_serial->size(); ++i) {
    EXPECT_EQ((*grouped_parallel)[i].group, (*grouped_serial)[i].group);
    EXPECT_EQ((*grouped_parallel)[i].count, (*grouped_serial)[i].count);
  }
}

// --- allocation bounds ------------------------------------------------------

TEST(BatchedEmissionAllocTest, EmitDominatedJoinStaysNearOneAllocPerTuple) {
  // A string-keyed equi join whose output is large relative to the
  // inputs: the emit path dominates. Per emitted tuple the engine should
  // pay one heap allocation (the drained tuple's value vector) — the
  // shared string payloads and the recycled batch slots eliminate the
  // per-value copies, and the flat hash table eliminates the per-build-
  // tuple node. The pre-batched executor paid ~6 allocations per
  // emitted tuple on this shape.
  const size_t n = 1500;
  Schema schema({{"K", ValueType::kString},
                 {"P", ValueType::kString},
                 {"VT", ValueType::kOngoingInterval}});
  auto make = [&](uint64_t seed, const std::string& prefix) {
    Rng rng(seed);
    OngoingRelation r(schema);
    for (size_t i = 0; i < n; ++i) {
      // Long keys (beyond small-string optimization) from a pool sized
      // so the join emits roughly one tuple per probe.
      std::string key = "join-key-component-" + std::to_string(i % n);
      EXPECT_TRUE(r.Insert({Value::String(std::move(key)),
                            Value::String(prefix +
                                          "-payload-string-beyond-sso-" +
                                          std::to_string(rng.Uniform(0, 9))),
                            Value::Ongoing(OngoingInterval::SinceUntilNow(
                                rng.Uniform(0, 50)))})
                      .ok());
    }
    return r;
  };
  OngoingRelation left = make(1, "left");
  OngoingRelation right = make(2, "right");
  ExprPtr pred = Eq(Col("L.K"), Col("R.K"));

  // Warm-up outside the measured scope (thread-local lazies, etc.).
  auto warm = HashJoin(left, right, pred, "L", "R");
  ASSERT_TRUE(warm.ok());
  const size_t out_size = warm->size();
  ASSERT_EQ(out_size, n);

  AllocScope scope;
  auto result = HashJoin(left, right, pred, "L", "R");
  uint64_t allocs = scope.count();
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), out_size);
  // One vector per drained tuple, plus O(1) table/batch overhead and the
  // result relation's geometric growth.
  EXPECT_LT(allocs, 2.0 * static_cast<double>(out_size))
      << "allocs=" << allocs << " for " << out_size << " emitted tuples";
}

}  // namespace
}  // namespace ongoingdb
