// The shared randomized plan-generator equivalence harness. Three test
// suites (batched_executor_test, index_scan_test, index_join_test) pit
// the batched/parallel execution pipeline against a reference evaluator
// built from the independently tested algebra primitives; this header
// holds the pieces they all need so the harness cannot drift apart
// per suite:
//
//  * a reference evaluator that materializes every node with nested
//    loops and unsplit predicates (a deliberately different code path
//    from the batched operators);
//  * order-normalized result comparison (tuple multisets incl. RT —
//    parallel pipelines emit in unspecified order);
//  * randomized base relations and plan generation with globally unique
//    attribute names (predicates stay resolvable at any plan depth);
//  * the batch-boundary drain helper (results of exactly 0, 1,
//    capacity, capacity + 1 tuples; no empty batch mid-stream);
//  * forced-parallel options for the workers 1/2/4 sweeps;
//  * seed management: FuzzSeeds() honors the ONGOINGDB_TEST_SEED env
//    override and ONGOINGDB_FUZZ_SEED_TRACE prints the failing seed, so
//    any CI failure replays locally in one command:
//
//      ONGOINGDB_TEST_SEED=<seed> ./<suite> --gtest_filter=<test>
#pragma once

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <numeric>
#include <set>
#include <string>
#include <vector>

#include "query/executor.h"
#include "query/optimizer.h"
#include "query/physical.h"
#include "relation/algebra.h"
#include "util/rng.h"

namespace ongoingdb {
namespace plan_fuzz {

// --- seed management --------------------------------------------------------

/// The seeds a fuzz suite instantiates with: [0, count), or the single
/// overriding seed from ONGOINGDB_TEST_SEED when set — the replay knob
/// for failures seen elsewhere (CI, another machine).
inline std::vector<uint64_t> FuzzSeeds(uint64_t count) {
  if (const char* env = std::getenv("ONGOINGDB_TEST_SEED");
      env != nullptr && *env != '\0') {
    return {std::strtoull(env, nullptr, 10)};
  }
  std::vector<uint64_t> seeds(static_cast<size_t>(count));
  std::iota(seeds.begin(), seeds.end(), uint64_t{0});
  return seeds;
}

// Emits the failing seed (and the replay command) with every assertion
// in scope. First line of every TEST_P body in a fuzz suite.
#define ONGOINGDB_FUZZ_SEED_TRACE(seed)                                    \
  SCOPED_TRACE(::testing::Message()                                        \
               << "fuzz seed " << (seed)                                   \
               << " (replay: ONGOINGDB_TEST_SEED=" << (seed) << ")")

// --- order-normalized comparison --------------------------------------------

/// Tuple multiset incl. RT: interval sets are normalized, so equal sets
/// render identically; multisets compare order-insensitively (parallel
/// pipelines emit in unspecified order).
inline std::multiset<std::string> Fingerprint(const OngoingRelation& r) {
  std::multiset<std::string> rows;
  for (const Tuple& t : r.tuples()) rows.insert(t.ToString());
  return rows;
}

// --- reference evaluator ----------------------------------------------------
// Materializes every node with the algebra's nested-loop primitives and
// evaluates predicates unsplit — a deliberately different code path from
// the batched operators (no split, no keys, no batches, no index).

inline std::vector<Value> ConcatValues(const Tuple& r, const Tuple& s) {
  std::vector<Value> values;
  values.reserve(r.num_values() + s.num_values());
  for (const Value& v : r.values()) values.push_back(v);
  for (const Value& v : s.values()) values.push_back(v);
  return values;
}

inline Result<OngoingRelation> ReferenceExecute(const PlanPtr& plan) {
  switch (plan->kind()) {
    case PlanKind::kScan:
      return static_cast<const ScanNode*>(plan.get())->relation();
    case PlanKind::kFilter: {
      const auto* node = static_cast<const FilterNode*>(plan.get());
      ONGOINGDB_ASSIGN_OR_RETURN(OngoingRelation in,
                                 ReferenceExecute(node->child()));
      OngoingRelation out(in.schema());
      for (const Tuple& t : in.tuples()) {
        ONGOINGDB_ASSIGN_OR_RETURN(
            OngoingBoolean b, node->predicate()->EvalPredicate(in.schema(), t));
        IntervalSet rt = t.rt().Intersect(b.st());
        if (!rt.IsEmpty()) out.AppendUnchecked(Tuple(t.values(), std::move(rt)));
      }
      return out;
    }
    case PlanKind::kProject: {
      const auto* node = static_cast<const ProjectNode*>(plan.get());
      ONGOINGDB_ASSIGN_OR_RETURN(OngoingRelation in,
                                 ReferenceExecute(node->child()));
      return Project(in, node->names());
    }
    case PlanKind::kJoin: {
      const auto* node = static_cast<const JoinNode*>(plan.get());
      ONGOINGDB_ASSIGN_OR_RETURN(OngoingRelation left,
                                 ReferenceExecute(node->left()));
      ONGOINGDB_ASSIGN_OR_RETURN(OngoingRelation right,
                                 ReferenceExecute(node->right()));
      Schema joined = left.schema().Concat(right.schema(), node->left_prefix(),
                                           node->right_prefix());
      OngoingRelation out(joined);
      for (const Tuple& lt : left.tuples()) {
        for (const Tuple& st : right.tuples()) {
          Tuple c(ConcatValues(lt, st), lt.rt().Intersect(st.rt()));
          if (c.rt().IsEmpty()) continue;
          ONGOINGDB_ASSIGN_OR_RETURN(
              OngoingBoolean b, node->predicate()->EvalPredicate(joined, c));
          IntervalSet rt = c.rt().Intersect(b.st());
          if (rt.IsEmpty()) continue;
          out.AppendUnchecked(Tuple(c.values(), std::move(rt)));
        }
      }
      return out;
    }
  }
  return Status::Internal("unknown plan kind");
}

inline Result<OngoingRelation> ReferenceExecuteAt(const PlanPtr& plan,
                                                  TimePoint rt) {
  switch (plan->kind()) {
    case PlanKind::kScan:
      return InstantiateRelation(
          static_cast<const ScanNode*>(plan.get())->relation(), rt);
    case PlanKind::kFilter: {
      const auto* node = static_cast<const FilterNode*>(plan.get());
      ONGOINGDB_ASSIGN_OR_RETURN(OngoingRelation in,
                                 ReferenceExecuteAt(node->child(), rt));
      OngoingRelation out(in.schema());
      for (const Tuple& t : in.tuples()) {
        ONGOINGDB_ASSIGN_OR_RETURN(
            bool keep, node->predicate()->EvalPredicateFixed(in.schema(), t, rt));
        if (keep) out.AppendUnchecked(t);
      }
      return out;
    }
    case PlanKind::kProject: {
      const auto* node = static_cast<const ProjectNode*>(plan.get());
      ONGOINGDB_ASSIGN_OR_RETURN(OngoingRelation in,
                                 ReferenceExecuteAt(node->child(), rt));
      return Project(in, node->names());
    }
    case PlanKind::kJoin: {
      const auto* node = static_cast<const JoinNode*>(plan.get());
      ONGOINGDB_ASSIGN_OR_RETURN(OngoingRelation left,
                                 ReferenceExecuteAt(node->left(), rt));
      ONGOINGDB_ASSIGN_OR_RETURN(OngoingRelation right,
                                 ReferenceExecuteAt(node->right(), rt));
      Schema joined = left.schema().Concat(right.schema(), node->left_prefix(),
                                           node->right_prefix());
      OngoingRelation out(joined);
      for (const Tuple& lt : left.tuples()) {
        for (const Tuple& st : right.tuples()) {
          Tuple c(ConcatValues(lt, st));
          ONGOINGDB_ASSIGN_OR_RETURN(
              bool keep, node->predicate()->EvalPredicateFixed(joined, c, rt));
          if (keep) out.AppendUnchecked(std::move(c));
        }
      }
      return out;
    }
  }
  return Status::Internal("unknown plan kind");
}

// --- randomized base relations ----------------------------------------------
// Base relations carry globally unique attribute names (per-relation
// prefix), so concatenated schemas never qualify and generated
// predicates stay resolvable at any plan depth.

inline const std::vector<std::string>& StringPool() {
  static const std::vector<std::string> pool = {
      "component-spam-filter", "component-crash-reporter",
      "component-preferences", "component-bookmarks"};
  return pool;
}

inline OngoingRelation MakeBase(Rng& rng, const std::string& prefix,
                                size_t n) {
  OngoingRelation r(Schema({{prefix + "ID", ValueType::kInt64},
                            {prefix + "K", ValueType::kInt64},
                            {prefix + "S", ValueType::kString},
                            {prefix + "VT", ValueType::kOngoingInterval}}));
  for (size_t i = 0; i < n; ++i) {
    OngoingInterval vt;
    if (rng.Bernoulli(0.3)) {
      vt = OngoingInterval::SinceUntilNow(rng.Uniform(0, 100));
    } else if (rng.Bernoulli(0.2)) {
      vt = OngoingInterval::FromNowUntil(rng.Uniform(0, 100));
    } else {
      TimePoint s = rng.Uniform(0, 100);
      vt = OngoingInterval::Fixed(s, s + rng.Uniform(1, 40));
    }
    EXPECT_TRUE(
        r.Insert({Value::Int64(static_cast<int64_t>(i)),
                  Value::Int64(rng.Uniform(0, 4)),
                  Value::String(StringPool()[static_cast<size_t>(
                      rng.Uniform(0, 3))]),
                  Value::Ongoing(vt)})
            .ok());
  }
  return r;
}

inline OngoingInterval RandomOngoingInterval(Rng& rng) {
  switch (rng.Uniform(0, 3)) {
    case 0:
      return OngoingInterval::SinceUntilNow(rng.Uniform(0, 100));
    case 1:
      return OngoingInterval::FromNowUntil(rng.Uniform(0, 100));
    case 2: {
      TimePoint a1 = rng.Uniform(0, 80);
      TimePoint a2 = rng.Uniform(0, 80);
      return OngoingInterval(OngoingTimePoint(a1, a1 + rng.Uniform(0, 40)),
                             OngoingTimePoint(a2, a2 + rng.Uniform(0, 40)));
    }
    default: {
      TimePoint s = rng.Uniform(0, 100);
      return OngoingInterval::Fixed(s, s + rng.Uniform(1, 40));
    }
  }
}

/// A relation with one ongoing and one fixed interval column (prefixed
/// like MakeBase's), so probes and join conjuncts can target either
/// representation — and the bitemporal-style mix keeps the
/// column-resolution regression covered end to end.
inline OngoingRelation MakeMixedRelation(uint64_t seed,
                                         const std::string& prefix,
                                         size_t n) {
  Rng rng(seed);
  OngoingRelation r(Schema({{prefix + "ID", ValueType::kInt64},
                            {prefix + "VT", ValueType::kOngoingInterval},
                            {prefix + "FT", ValueType::kFixedInterval}}));
  for (size_t i = 0; i < n; ++i) {
    TimePoint fs = rng.Uniform(0, 100);
    EXPECT_TRUE(
        r.Insert({Value::Int64(static_cast<int64_t>(i)),
                  Value::Ongoing(RandomOngoingInterval(rng)),
                  Value::Interval(FixedInterval{fs, fs + rng.Uniform(1, 40)})})
            .ok());
  }
  return r;
}

// --- randomized plan generation ---------------------------------------------

inline std::vector<std::string> NamesOfType(const Schema& schema,
                                            ValueType type) {
  std::vector<std::string> names;
  for (const Attribute& a : schema.attributes()) {
    if (a.type == type) names.push_back(a.name);
  }
  return names;
}

template <typename T>
const T& PickOne(Rng& rng, const std::vector<T>& pool) {
  return pool[static_cast<size_t>(
      rng.Uniform(0, static_cast<int64_t>(pool.size()) - 1))];
}

inline ExprPtr RandomFilterPredicate(Rng& rng, const Schema& schema) {
  std::vector<ExprPtr> conjuncts;
  auto ints = NamesOfType(schema, ValueType::kInt64);
  auto strs = NamesOfType(schema, ValueType::kString);
  auto vts = NamesOfType(schema, ValueType::kOngoingInterval);
  if (!ints.empty() && rng.Bernoulli(0.7)) {
    conjuncts.push_back(
        Lt(Col(PickOne(rng, ints)), Lit(rng.Uniform(0, 12))));
  }
  if (!strs.empty() && rng.Bernoulli(0.3)) {
    conjuncts.push_back(Eq(Col(PickOne(rng, strs)),
                           Lit(Value::String(PickOne(rng, StringPool())))));
  }
  if (!vts.empty() && rng.Bernoulli(0.6)) {
    TimePoint s = rng.Uniform(0, 90);
    conjuncts.push_back(
        OverlapsExpr(Col(PickOne(rng, vts)),
                     Lit(OngoingInterval::Fixed(s, s + rng.Uniform(5, 40)))));
  }
  if (conjuncts.empty()) {
    conjuncts.push_back(Lt(Lit(int64_t{0}), Lit(int64_t{1})));
  }
  return AndAll(conjuncts);
}

inline ExprPtr RandomJoinPredicate(Rng& rng, const Schema& left,
                                   const Schema& right) {
  std::vector<ExprPtr> conjuncts;
  auto lints = NamesOfType(left, ValueType::kInt64);
  auto rints = NamesOfType(right, ValueType::kInt64);
  auto lstrs = NamesOfType(left, ValueType::kString);
  auto rstrs = NamesOfType(right, ValueType::kString);
  auto lvts = NamesOfType(left, ValueType::kOngoingInterval);
  auto rvts = NamesOfType(right, ValueType::kOngoingInterval);
  if (!lints.empty() && !rints.empty() && rng.Bernoulli(0.8)) {
    conjuncts.push_back(
        Eq(Col(PickOne(rng, lints)), Col(PickOne(rng, rints))));
  }
  if (!lstrs.empty() && !rstrs.empty() && rng.Bernoulli(0.3)) {
    conjuncts.push_back(
        Eq(Col(PickOne(rng, lstrs)), Col(PickOne(rng, rstrs))));
  }
  if (!lvts.empty() && !rvts.empty() && rng.Bernoulli(0.6)) {
    conjuncts.push_back(
        OverlapsExpr(Col(PickOne(rng, lvts)), Col(PickOne(rng, rvts))));
  }
  if (conjuncts.empty()) {
    // Degenerate cross product (keeps the generator total when
    // projections dropped every joinable column).
    conjuncts.push_back(Lt(Lit(int64_t{0}), Lit(int64_t{1})));
  }
  return AndAll(conjuncts);
}

/// Owns the base relations a generated plan borrows.
struct PlanFixture {
  std::vector<std::unique_ptr<OngoingRelation>> relations;
  int join_counter = 0;
};

inline PlanPtr RandomPlan(Rng& rng, PlanFixture* fx, int budget) {
  if (budget <= 0 || rng.Bernoulli(0.25)) {
    auto rel = std::make_unique<OngoingRelation>(
        MakeBase(rng, "R" + std::to_string(fx->relations.size()) + "_",
                 static_cast<size_t>(rng.Uniform(5, 14))));
    fx->relations.push_back(std::move(rel));
    PlanPtr scan = Scan(fx->relations.back().get(),
                        "R" + std::to_string(fx->relations.size() - 1));
    return scan;
  }
  const double roll = rng.UniformReal();
  if (roll < 0.35) {
    PlanPtr child = RandomPlan(rng, fx, budget - 1);
    Schema schema = *OutputSchema(child);
    return Filter(std::move(child), RandomFilterPredicate(rng, schema));
  }
  if (roll < 0.55) {
    PlanPtr child = RandomPlan(rng, fx, budget - 1);
    Schema schema = *OutputSchema(child);
    // Keep a random non-empty prefix-free subset, preserving order.
    std::vector<std::string> names;
    for (const Attribute& a : schema.attributes()) {
      if (rng.Bernoulli(0.6)) names.push_back(a.name);
    }
    if (names.empty()) names.push_back(schema.attribute(0).name);
    return ProjectPlan(std::move(child), std::move(names));
  }
  PlanPtr left = RandomPlan(rng, fx, budget - 1);
  PlanPtr right = RandomPlan(rng, fx, budget - 1);
  Schema ls = *OutputSchema(left);
  Schema rs = *OutputSchema(right);
  const int id = fx->join_counter++;
  return Join(std::move(left), std::move(right),
              RandomJoinPredicate(rng, ls, rs), "L" + std::to_string(id),
              "R" + std::to_string(id));
}

/// Rebuilds the plan with every join forced to `algorithm`.
inline PlanPtr WithAlgorithm(const PlanPtr& plan, JoinAlgorithm algorithm) {
  switch (plan->kind()) {
    case PlanKind::kScan:
      return plan;
    case PlanKind::kFilter: {
      const auto* node = static_cast<const FilterNode*>(plan.get());
      return Filter(WithAlgorithm(node->child(), algorithm),
                    node->predicate(), node->access_path());
    }
    case PlanKind::kProject: {
      const auto* node = static_cast<const ProjectNode*>(plan.get());
      return ProjectPlan(WithAlgorithm(node->child(), algorithm),
                         node->names());
    }
    case PlanKind::kJoin: {
      const auto* node = static_cast<const JoinNode*>(plan.get());
      return Join(WithAlgorithm(node->left(), algorithm),
                  WithAlgorithm(node->right(), algorithm), node->predicate(),
                  node->left_prefix(), node->right_prefix(), algorithm);
    }
  }
  return plan;
}

// --- drains and sweeps ------------------------------------------------------

/// Drains `op` with caller-chosen batch capacity; verifies the protocol
/// (no empty batch mid-stream, every tuple within capacity) and returns
/// the total tuple count. The capacity sweep 0/1/cap/cap+1 lives in the
/// calling suites — this is the shared measuring loop.
inline size_t DrainCountWithCapacity(PhysicalOperator& op, size_t capacity) {
  EXPECT_TRUE(op.Open().ok());
  TupleBatch batch(capacity);
  size_t total = 0;
  while (true) {
    EXPECT_TRUE(op.Next(&batch).ok());
    if (batch.empty()) break;
    EXPECT_LE(batch.size(), capacity);
    total += batch.size();
  }
  op.Close();
  return total;
}

/// Parallel options that force the morsel-driven lowering on arbitrarily
/// small inputs (no serial fallback) with morsels small enough that even
/// tiny relations split across several claims — partition handoff, empty
/// partitions and suspension all get exercised. The workers 1/2/4 sweep
/// lives in the calling suites.
inline ParallelOptions ForcedParallel(size_t workers, size_t morsel_size) {
  ParallelOptions options;
  options.workers = workers;
  options.morsel_size = morsel_size;
  options.min_parallel_tuples = 0;
  return options;
}

}  // namespace plan_fuzz
}  // namespace ongoingdb
