// Unit tests for the interval histograms (storage/stats.h): equi-depth
// cumulative fractions, probe-selectivity estimates vs the exact
// candidate counts the IntervalIndex returns (uniform, skewed, and
// degenerate point-interval distributions), and the cost-based kAuto
// regression — on a constructed dataset the optimizer must pick
// index-NL for selective temporal probes and flip to hash exactly once
// as the probes widen past the modeled crossover.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "query/interval_index.h"
#include "query/optimizer.h"
#include "query/plan.h"
#include "storage/stats.h"
#include "util/rng.h"

namespace ongoingdb {
namespace {

OngoingRelation MakeIntervalRelation(const std::string& prefix,
                                     const std::vector<OngoingInterval>& ivs) {
  OngoingRelation r(Schema({{prefix + "K", ValueType::kInt64},
                            {prefix + "VT", ValueType::kOngoingInterval}}));
  for (size_t i = 0; i < ivs.size(); ++i) {
    EXPECT_TRUE(r.Insert({Value::Int64(static_cast<int64_t>(i % 10)),
                          Value::Ongoing(ivs[i])})
                    .ok());
  }
  return r;
}

// The ground truth a selectivity estimate approximates: the fraction of
// tuples the IntervalIndex actually returns as candidates.
double ExactCandidateFraction(const OngoingRelation& r,
                              const std::string& column, IntervalProbeOp op,
                              const IntervalBounds& probe) {
  auto index = IntervalIndex::Build(r, column);
  EXPECT_TRUE(index.ok());
  std::vector<size_t> candidates;
  index->CandidatesInto(op, probe, &candidates);
  return static_cast<double>(candidates.size()) /
         static_cast<double>(r.size());
}

TEST(EquiDepthHistogramTest, CumulativeFractionsOnUniformSamples) {
  std::vector<TimePoint> samples;
  for (TimePoint v = 0; v < 1000; ++v) samples.push_back(v);
  EquiDepthHistogram h = BuildEquiDepthHistogram(samples, 32);
  EXPECT_NEAR(h.FractionAtMost(-5), 0.0, 1e-9);
  EXPECT_NEAR(h.FractionAtMost(999), 1.0, 1e-9);
  EXPECT_NEAR(h.FractionAtMost(2000), 1.0, 1e-9);
  for (TimePoint v : {TimePoint{100}, TimePoint{250}, TimePoint{500},
                      TimePoint{900}}) {
    EXPECT_NEAR(h.FractionAtMost(v), static_cast<double>(v + 1) / 1000.0,
                0.05)
        << "v=" << v;
    EXPECT_LE(h.FractionBelow(v), h.FractionAtMost(v));
  }
}

TEST(EquiDepthHistogramTest, DegenerateSingleValueSamples) {
  EquiDepthHistogram h =
      BuildEquiDepthHistogram(std::vector<TimePoint>(100, 42), 16);
  EXPECT_NEAR(h.FractionAtMost(41), 0.0, 1e-9);
  EXPECT_NEAR(h.FractionAtMost(42), 1.0, 1e-9);
  EXPECT_NEAR(h.FractionBelow(42), 0.0, 1e-9);
  EXPECT_TRUE(BuildEquiDepthHistogram({}, 16).empty());
}

TEST(IntervalColumnStatsTest, UniformDistributionEstimatesMatchExactCounts) {
  Rng rng(1);
  std::vector<OngoingInterval> ivs;
  for (int i = 0; i < 2000; ++i) {
    TimePoint s = rng.Uniform(0, 1000);
    ivs.push_back(OngoingInterval::Fixed(s, s + 10));
  }
  OngoingRelation r = MakeIntervalRelation("U_", ivs);
  auto stats = ComputeIntervalColumnStats(r, 1, 32, r.size());
  ASSERT_TRUE(stats.ok());
  for (auto op : {IntervalProbeOp::kOverlaps, IntervalProbeOp::kBefore,
                  IntervalProbeOp::kAfter, IntervalProbeOp::kContains}) {
    for (TimePoint s : {TimePoint{100}, TimePoint{400}, TimePoint{800}}) {
      IntervalBounds probe = op == IntervalProbeOp::kContains
                                 ? IntervalBounds::Point(s)
                                 : IntervalBounds::Of(FixedInterval{s, s + 100});
      const double exact = ExactCandidateFraction(r, "U_VT", op, probe);
      const double estimate = stats->EstimateProbeSelectivity(op, probe);
      EXPECT_NEAR(estimate, exact, 0.06)
          << "op=" << IntervalProbeOpName(op) << " s=" << s;
    }
  }
  // The duration histogram sees the constant width.
  EXPECT_NEAR(stats->duration.FractionAtMost(9), 0.0, 1e-9);
  EXPECT_NEAR(stats->duration.FractionAtMost(10), 1.0, 1e-9);
}

TEST(IntervalColumnStatsTest, SkewedDistributionEstimatesMatchExactCounts) {
  // Mass clustered late (the Fig. 7 shape): equi-depth buckets must
  // keep resolution where the mass is.
  Rng rng(2);
  std::vector<OngoingInterval> ivs;
  for (int i = 0; i < 2000; ++i) {
    TimePoint s = rng.SkewedTowardsHigh(0, 1000, 6.0);
    ivs.push_back(OngoingInterval::Fixed(s, s + rng.Uniform(1, 20)));
  }
  OngoingRelation r = MakeIntervalRelation("S_", ivs);
  auto stats = ComputeIntervalColumnStats(r, 1, 32, r.size());
  ASSERT_TRUE(stats.ok());
  for (TimePoint s : {TimePoint{500}, TimePoint{900}, TimePoint{980}}) {
    IntervalBounds probe = IntervalBounds::Of(FixedInterval{s, s + 20});
    const double exact =
        ExactCandidateFraction(r, "S_VT", IntervalProbeOp::kOverlaps, probe);
    const double estimate =
        stats->EstimateProbeSelectivity(IntervalProbeOp::kOverlaps, probe);
    EXPECT_NEAR(estimate, exact, 0.06) << "s=" << s;
  }
}

TEST(IntervalColumnStatsTest, DegeneratePointIntervalsEstimateZeroContains) {
  // Point intervals [s, s) are empty at every reference time: contains
  // probes return (near) nothing, and the estimate must agree instead
  // of assuming unit-width intervals.
  Rng rng(3);
  std::vector<OngoingInterval> ivs;
  for (int i = 0; i < 500; ++i) {
    TimePoint s = rng.Uniform(0, 200);
    ivs.push_back(OngoingInterval::Fixed(s, s));
  }
  OngoingRelation r = MakeIntervalRelation("P_", ivs);
  auto stats = ComputeIntervalColumnStats(r, 1, 32, r.size());
  ASSERT_TRUE(stats.ok());
  for (TimePoint t : {TimePoint{50}, TimePoint{100}, TimePoint{150}}) {
    const IntervalBounds probe = IntervalBounds::Point(t);
    const double exact =
        ExactCandidateFraction(r, "P_VT", IntervalProbeOp::kContains, probe);
    EXPECT_NEAR(exact, 0.0, 1e-9);
    EXPECT_NEAR(
        stats->EstimateProbeSelectivity(IntervalProbeOp::kContains, probe),
        0.0, 0.05)
        << "t=" << t;
  }
  // Ongoing (non-degenerate) estimation still behaves on sampled stats:
  // a fraction-limited sample stays within tolerance of the exact count.
  auto sampled = ComputeIntervalColumnStats(r, 1, 32, 128);
  ASSERT_TRUE(sampled.ok());
  const IntervalBounds wide = IntervalBounds::Of(FixedInterval{0, 300});
  EXPECT_NEAR(
      sampled->EstimateProbeSelectivity(IntervalProbeOp::kBefore, wide),
      ExactCandidateFraction(r, "P_VT", IntervalProbeOp::kBefore, wide),
      0.10);
}

// The cost-based kAuto regression: keys with 1/10 selectivity plus a
// temporal overlaps conjunct whose selectivity is set by the outer
// interval width. Narrow probes must resolve to index-NL, wide ones to
// hash, and the flip must happen exactly once as the width sweeps up —
// the measured crossover of the two cost curves.
TEST(CostBasedJoinGateTest, AutoFlipsFromIndexNLToHashAtTheCrossover) {
  Rng rng(4);
  std::vector<OngoingInterval> inner_ivs;
  for (int i = 0; i < 1000; ++i) {
    TimePoint s = rng.Uniform(0, 1000);
    inner_ivs.push_back(OngoingInterval::Fixed(s, s + 1));
  }
  OngoingRelation inner = MakeIntervalRelation("B_", inner_ivs);

  auto resolve_for_width = [&](TimePoint width) {
    Rng orng(5);
    std::vector<OngoingInterval> outer_ivs;
    for (int i = 0; i < 500; ++i) {
      TimePoint s = orng.Uniform(0, 1000 - width);
      outer_ivs.push_back(OngoingInterval::Fixed(s, s + width));
    }
    // The fixture owns the outer per call; resolution happens on the
    // node, not on executed data, so lifetime ends with the call.
    OngoingRelation outer = MakeIntervalRelation("A_", outer_ivs);
    PlanPtr plan = Join(Scan(&outer, "A"), Scan(&inner, "B"),
                        And(Eq(Col("A_K"), Col("B_K")),
                            OverlapsExpr(Col("A_VT"), Col("B_VT"))),
                        "L", "R");
    auto chosen = ChooseJoinAlgorithms(plan);
    EXPECT_TRUE(chosen.ok());
    return static_cast<const JoinNode*>(chosen->get())->algorithm();
  };

  EXPECT_EQ(resolve_for_width(2), JoinAlgorithm::kIndexNL)
      << "selective temporal probe must pick the index";
  EXPECT_EQ(resolve_for_width(600), JoinAlgorithm::kHash)
      << "wide temporal probe must fall back to the key join";
  // The flip is monotone: exactly one index-NL -> hash transition
  // across the width sweep.
  int flips = 0;
  JoinAlgorithm previous = JoinAlgorithm::kIndexNL;
  for (TimePoint width : {TimePoint{2}, TimePoint{10}, TimePoint{40},
                          TimePoint{80}, TimePoint{120}, TimePoint{200},
                          TimePoint{350}, TimePoint{600}}) {
    JoinAlgorithm algorithm = resolve_for_width(width);
    ASSERT_TRUE(algorithm == JoinAlgorithm::kIndexNL ||
                algorithm == JoinAlgorithm::kHash);
    if (algorithm != previous) {
      ++flips;
      EXPECT_EQ(previous, JoinAlgorithm::kIndexNL);
      EXPECT_EQ(algorithm, JoinAlgorithm::kHash);
    }
    previous = algorithm;
  }
  EXPECT_EQ(flips, 1) << "the cost curves cross exactly once";

  // Below the inner-size floor the gate never picks the index, no
  // matter how selective the probe (the build cannot amortize).
  std::vector<OngoingInterval> tiny_ivs(inner_ivs.begin(),
                                        inner_ivs.begin() + 32);
  OngoingRelation tiny_inner = MakeIntervalRelation("B_", tiny_ivs);
  std::vector<OngoingInterval> outer_ivs;
  for (int i = 0; i < 100; ++i) {
    TimePoint s = rng.Uniform(0, 1000);
    outer_ivs.push_back(OngoingInterval::Fixed(s, s + 2));
  }
  OngoingRelation outer = MakeIntervalRelation("A_", outer_ivs);
  PlanPtr plan = Join(Scan(&outer, "A"), Scan(&tiny_inner, "B"),
                      And(Eq(Col("A_K"), Col("B_K")),
                          OverlapsExpr(Col("A_VT"), Col("B_VT"))),
                      "L", "R");
  auto chosen = ChooseJoinAlgorithms(plan);
  ASSERT_TRUE(chosen.ok());
  EXPECT_EQ(static_cast<const JoinNode*>(chosen->get())->algorithm(),
            JoinAlgorithm::kHash);
}

}  // namespace
}  // namespace ongoingdb
