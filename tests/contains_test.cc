// Tests of the contains (timeslice) predicate across layers.
#include <gtest/gtest.h>

#include "core/operations.h"
#include "expr/expr.h"

namespace ongoingdb {
namespace {

TEST(ContainsTest, FixedIntervalFixedPoint) {
  OngoingInterval iv = OngoingInterval::Fixed(MD(3, 1), MD(6, 1));
  EXPECT_TRUE(Contains(iv, OngoingTimePoint::Fixed(MD(4, 1))).IsAlwaysTrue());
  EXPECT_TRUE(Contains(iv, OngoingTimePoint::Fixed(MD(3, 1))).IsAlwaysTrue());
  // End point is exclusive.
  EXPECT_TRUE(
      Contains(iv, OngoingTimePoint::Fixed(MD(6, 1))).IsAlwaysFalse());
  EXPECT_TRUE(
      Contains(iv, OngoingTimePoint::Fixed(MD(2, 1))).IsAlwaysFalse());
}

TEST(ContainsTest, OngoingIntervalContainsFixedPoint) {
  // [03/01, now) contains 04/15 from 04/16 on (once now passed it).
  OngoingInterval iv = OngoingInterval::SinceUntilNow(MD(3, 1));
  OngoingBoolean b = Contains(iv, OngoingTimePoint::Fixed(MD(4, 15)));
  EXPECT_EQ(b.st(), (IntervalSet{{MD(4, 16), kMaxInfinity}}));
}

TEST(ContainsTest, IntervalContainsNow) {
  // [03/01, 06/01) contains now exactly while 03/01 <= rt < 06/01.
  OngoingInterval iv = OngoingInterval::Fixed(MD(3, 1), MD(6, 1));
  OngoingBoolean b = Contains(iv, OngoingTimePoint::Now());
  EXPECT_EQ(b.st(), (IntervalSet{{MD(3, 1), MD(6, 1)}}));
}

TEST(ContainsTest, EmptyIntervalContainsNothing) {
  OngoingInterval empty = OngoingInterval::Fixed(MD(5, 1), MD(5, 1));
  EXPECT_TRUE(
      Contains(empty, OngoingTimePoint::Fixed(MD(5, 1))).IsAlwaysFalse());
  EXPECT_TRUE(Contains(empty, OngoingTimePoint::Now()).IsAlwaysFalse());
}

TEST(ContainsTest, SnapshotEquivalenceSweep) {
  for (TimePoint a = -3; a <= 3; ++a) {
    for (TimePoint b = a; b <= 4; ++b) {
      for (TimePoint c = -3; c <= 3; ++c) {
        for (TimePoint d = c; d <= 4; ++d) {
          OngoingInterval iv(OngoingTimePoint(a, b), OngoingTimePoint(c, d));
          for (TimePoint p = -4; p <= 5; ++p) {
            OngoingBoolean contains =
                Contains(iv, OngoingTimePoint::Fixed(p));
            for (TimePoint rt = -6; rt <= 7; ++rt) {
              EXPECT_EQ(contains.Instantiate(rt),
                        ContainsF(iv.Instantiate(rt), p))
                  << iv.ToString() << " contains " << p << " at rt=" << rt;
            }
          }
        }
      }
    }
  }
}

TEST(ContainsTest, ExprLayer) {
  Schema schema({{"VT", ValueType::kOngoingInterval},
                 {"T", ValueType::kTimePoint}});
  Tuple t({Value::Ongoing(OngoingInterval::SinceUntilNow(MD(3, 1))),
           Value::Time(MD(4, 15))});
  auto b = ContainsExpr(Col("VT"), Col("T"))->EvalPredicate(schema, t);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->st(), (IntervalSet{{MD(4, 16), kMaxInfinity}}));
  // Fixed mode on instantiated tuples.
  Tuple inst(t.InstantiateValues(MD(5, 1)));
  auto fixed = ContainsExpr(Col("VT"), Col("T"))
                   ->EvalPredicateFixed(schema.Instantiated(), inst);
  ASSERT_TRUE(fixed.ok());
  EXPECT_TRUE(*fixed);
  // Type errors.
  EXPECT_FALSE(
      ContainsExpr(Col("T"), Col("VT"))->EvalPredicate(schema, t).ok());
}

}  // namespace
}  // namespace ongoingdb
