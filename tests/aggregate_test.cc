// Tests of temporal aggregation over ongoing relations (future-work
// extension): COUNT as a step function of the reference time.
#include "query/aggregate.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace ongoingdb {
namespace {

OngoingRelation MakeRelation(std::vector<IntervalSet> rts) {
  OngoingRelation r(Schema({{"ID", ValueType::kInt64},
                            {"Grp", ValueType::kString}}));
  int64_t id = 0;
  for (IntervalSet& rt : rts) {
    EXPECT_TRUE(r.InsertWithRt({Value::Int64(id), Value::String(
                                    id % 2 == 0 ? "even" : "odd")},
                               std::move(rt))
                    .ok());
    ++id;
  }
  return r;
}

TEST(AggregateTest, CountOfEmptyRelationIsZeroEverywhere) {
  OngoingRelation r(Schema({{"ID", ValueType::kInt64}}));
  StepFunction count = CountAtEachReferenceTime(r);
  ASSERT_EQ(count.steps.size(), 1u);
  EXPECT_EQ(count.At(0), 0);
  EXPECT_EQ(count.Max(), 0);
}

TEST(AggregateTest, CountStepsAtReferenceTimeBoundaries) {
  OngoingRelation r = MakeRelation({IntervalSet{{0, 10}},
                                    IntervalSet{{5, 15}},
                                    IntervalSet{{20, 30}}});
  StepFunction count = CountAtEachReferenceTime(r);
  EXPECT_EQ(count.At(-1), 0);
  EXPECT_EQ(count.At(0), 1);
  EXPECT_EQ(count.At(5), 2);
  EXPECT_EQ(count.At(12), 1);
  EXPECT_EQ(count.At(17), 0);
  EXPECT_EQ(count.At(25), 1);
  EXPECT_EQ(count.At(100), 0);
  EXPECT_EQ(count.Max(), 2);
}

TEST(AggregateTest, CountMatchesInstantiatedCardinality) {
  // Snapshot equivalence for the aggregate: count.At(rt) ==
  // |InstantiateRelation(r, rt)| at every reference time.
  Rng rng(17);
  std::vector<IntervalSet> rts;
  for (int i = 0; i < 40; ++i) {
    TimePoint s = rng.Uniform(-30, 30);
    rts.push_back(IntervalSet{{s, s + rng.Uniform(1, 25)}});
  }
  OngoingRelation r = MakeRelation(std::move(rts));
  StepFunction count = CountAtEachReferenceTime(r);
  for (TimePoint rt = -40; rt <= 70; ++rt) {
    EXPECT_EQ(count.At(rt),
              static_cast<int64_t>(InstantiateRelation(r, rt).size()))
        << rt;
  }
}

TEST(AggregateTest, StepsAreMaximalAndGapFree) {
  OngoingRelation r = MakeRelation({IntervalSet{{0, 10}},
                                    IntervalSet{{0, 10}}});
  StepFunction count = CountAtEachReferenceTime(r);
  // Cover (-inf, +inf) with no gaps.
  EXPECT_EQ(count.steps.front().range.start, kMinInfinity);
  EXPECT_EQ(count.steps.back().range.end, kMaxInfinity);
  for (size_t i = 1; i < count.steps.size(); ++i) {
    EXPECT_EQ(count.steps[i - 1].range.end, count.steps[i].range.start);
    EXPECT_NE(count.steps[i - 1].value, count.steps[i].value);  // maximal
  }
  EXPECT_EQ(count.Max(), 2);
}

TEST(AggregateTest, CountWithTrivialReferenceTimes) {
  OngoingRelation r = MakeRelation({IntervalSet::All(), IntervalSet::All()});
  StepFunction count = CountAtEachReferenceTime(r);
  ASSERT_EQ(count.steps.size(), 1u);
  EXPECT_EQ(count.At(12345), 2);
}

TEST(AggregateTest, GroupedCount) {
  OngoingRelation r = MakeRelation({IntervalSet{{0, 10}},    // even
                                    IntervalSet{{5, 15}},    // odd
                                    IntervalSet{{8, 20}}});  // even
  auto grouped = CountGroupedBy(r, "Grp");
  ASSERT_TRUE(grouped.ok());
  ASSERT_EQ(grouped->size(), 2u);
  for (const GroupedCount& g : *grouped) {
    if (g.group.AsString() == "even") {
      EXPECT_EQ(g.count.At(9), 2);
      EXPECT_EQ(g.count.At(12), 1);
    } else {
      EXPECT_EQ(g.count.At(9), 1);
      EXPECT_EQ(g.count.At(20), 0);
    }
  }
}

TEST(AggregateTest, SumMatchesInstantiatedSum) {
  Rng rng(23);
  OngoingRelation r(Schema({{"ID", ValueType::kInt64},
                            {"W", ValueType::kInt64}}));
  for (int i = 0; i < 30; ++i) {
    TimePoint s = rng.Uniform(-20, 20);
    ASSERT_TRUE(r.InsertWithRt({Value::Int64(i),
                                Value::Int64(rng.Uniform(-5, 10))},
                               IntervalSet{{s, s + rng.Uniform(1, 20)}})
                    .ok());
  }
  auto sum = SumAtEachReferenceTime(r, "W");
  ASSERT_TRUE(sum.ok());
  for (TimePoint rt = -30; rt <= 50; ++rt) {
    int64_t expect = 0;
    for (const Tuple& t : r.tuples()) {
      if (t.rt().Contains(rt)) expect += t.value(1).AsInt64();
    }
    EXPECT_EQ(sum->At(rt), expect) << rt;
  }
}

TEST(AggregateTest, MinMaxMatchInstantiatedExtremes) {
  Rng rng(29);
  OngoingRelation r(Schema({{"W", ValueType::kInt64}}));
  for (int i = 0; i < 25; ++i) {
    TimePoint s = rng.Uniform(-15, 15);
    ASSERT_TRUE(r.InsertWithRt({Value::Int64(rng.Uniform(-50, 50))},
                               IntervalSet{{s, s + rng.Uniform(1, 15)}})
                    .ok());
  }
  auto mn = MinAtEachReferenceTime(r, "W", /*empty_value=*/999);
  auto mx = MaxAtEachReferenceTime(r, "W", /*empty_value=*/-999);
  ASSERT_TRUE(mn.ok());
  ASSERT_TRUE(mx.ok());
  for (TimePoint rt = -25; rt <= 40; ++rt) {
    int64_t expect_min = 999, expect_max = -999;
    bool any = false;
    for (const Tuple& t : r.tuples()) {
      if (!t.rt().Contains(rt)) continue;
      int64_t v = t.value(0).AsInt64();
      expect_min = any ? std::min(expect_min, v) : v;
      expect_max = any ? std::max(expect_max, v) : v;
      any = true;
    }
    EXPECT_EQ(mn->At(rt), expect_min) << rt;
    EXPECT_EQ(mx->At(rt), expect_max) << rt;
  }
}

TEST(AggregateTest, SumRequiresInt64Column) {
  OngoingRelation r(Schema({{"S", ValueType::kString}}));
  ASSERT_TRUE(r.Insert({Value::String("x")}).ok());
  EXPECT_FALSE(SumAtEachReferenceTime(r, "S").ok());
  EXPECT_FALSE(SumAtEachReferenceTime(r, "Missing").ok());
}

TEST(AggregateTest, GroupingByOngoingAttributeIsRejected) {
  OngoingRelation r(Schema({{"T", ValueType::kOngoingTimePoint}}));
  ASSERT_TRUE(r.Insert({Value::Ongoing(OngoingTimePoint::Now())}).ok());
  EXPECT_FALSE(CountGroupedBy(r, "T").ok());
}

}  // namespace
}  // namespace ongoingdb
