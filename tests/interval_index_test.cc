// Tests of the interval index (future-work extension): candidate sets
// must be supersets of the exact predicate answers. The randomized
// property suites honor ONGOINGDB_TEST_SEED and print their seed on
// failure (tests/testing/plan_fuzz.h).
#include "query/interval_index.h"

#include <gtest/gtest.h>

#include <set>

#include "core/operations.h"
#include "relation/algebra.h"
#include "testing/plan_fuzz.h"
#include "util/rng.h"

namespace ongoingdb {
namespace {

OngoingRelation MakeRelation(uint64_t seed, size_t n) {
  Rng rng(seed);
  OngoingRelation r(Schema({{"ID", ValueType::kInt64},
                            {"VT", ValueType::kOngoingInterval}}));
  for (size_t i = 0; i < n; ++i) {
    OngoingInterval vt;
    switch (rng.Uniform(0, 2)) {
      case 0:
        vt = OngoingInterval::SinceUntilNow(rng.Uniform(0, 200));
        break;
      case 1:
        vt = OngoingInterval::FromNowUntil(rng.Uniform(0, 200));
        break;
      default: {
        TimePoint s = rng.Uniform(0, 200);
        vt = OngoingInterval::Fixed(s, s + rng.Uniform(1, 40));
      }
    }
    EXPECT_TRUE(r.Insert({Value::Int64(static_cast<int64_t>(i)),
                          Value::Ongoing(vt)})
                    .ok());
  }
  return r;
}

TEST(IntervalIndexTest, RequiresIntervalAttribute) {
  OngoingRelation r(Schema({{"ID", ValueType::kInt64}}));
  EXPECT_FALSE(IntervalIndex::Build(r, "ID").ok());
  EXPECT_FALSE(IntervalIndex::Build(r, "Missing").ok());
}

// Regression: on a bitemporal relation whose transaction-time column
// precedes the valid-time column, selections through an index built on
// VT must evaluate VT — the old code re-resolved "the first interval
// attribute" and evaluated TT instead.
TEST(IntervalIndexTest, SelectsOnTheIndexedColumnNotTheFirstIntervalColumn) {
  OngoingRelation r(Schema({{"ID", ValueType::kInt64},
                            {"TT", ValueType::kOngoingInterval},
                            {"VT", ValueType::kOngoingInterval}}));
  // TT far in the past, VT overlapping the probe: the tuple matches on
  // VT only.
  ASSERT_TRUE(r.Insert({Value::Int64(1),
                        Value::Ongoing(OngoingInterval::Fixed(0, 10)),
                        Value::Ongoing(OngoingInterval::Fixed(100, 200))})
                  .ok());
  // VT far in the future: no match on VT (TT would match the probe).
  ASSERT_TRUE(r.Insert({Value::Int64(2),
                        Value::Ongoing(OngoingInterval::Fixed(100, 200)),
                        Value::Ongoing(OngoingInterval::Fixed(500, 600))})
                  .ok());
  auto index = IntervalIndex::Build(r, "VT");
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->column_index(), 2u);

  const FixedInterval probe{100, 150};
  auto overlaps = index->SelectOverlaps(r, probe);
  ASSERT_TRUE(overlaps.ok());
  ASSERT_EQ(overlaps->size(), 1u);
  EXPECT_EQ(overlaps->tuple(0).value(0).AsInt64(), 1);

  // Before [300, 400): VT of tuple 1 ends at 200 (match); tuple 2's VT
  // starts at 500 (no match) even though its TT is long finished.
  auto before = index->SelectBefore(r, FixedInterval{300, 400});
  ASSERT_TRUE(before.ok());
  ASSERT_EQ(before->size(), 1u);
  EXPECT_EQ(before->tuple(0).value(0).AsInt64(), 1);
}

// Regression: the before-sweep used to stop at min_start >= probe.start,
// dropping degenerate candidates with min_start == min_end ==
// probe.start even though they satisfy the candidate condition
// min_end <= probe.start.
TEST(IntervalIndexTest, BeforeCandidatesKeepDegenerateStopBoundEntries) {
  OngoingRelation r(Schema({{"ID", ValueType::kInt64},
                            {"VT", ValueType::kOngoingInterval}}));
  // min_start == min_end == 5: start = 5+, end = 5+9.
  OngoingInterval degenerate(OngoingTimePoint::Growing(5),
                             OngoingTimePoint(5, 9));
  ASSERT_TRUE(r.Insert({Value::Int64(0),
                        Value::Ongoing(OngoingInterval::Fixed(0, 3))})
                  .ok());
  ASSERT_TRUE(r.Insert({Value::Int64(1), Value::Ongoing(degenerate)}).ok());
  ASSERT_TRUE(r.Insert({Value::Int64(2),
                        Value::Ongoing(OngoingInterval::Fixed(7, 12))})
                  .ok());
  auto index = IntervalIndex::Build(r, "VT");
  ASSERT_TRUE(index.ok());

  const FixedInterval probe{5, 8};
  std::vector<size_t> c = index->BeforeCandidates(probe);
  std::set<size_t> candidates(c.begin(), c.end());
  EXPECT_TRUE(candidates.count(0) > 0);
  EXPECT_TRUE(candidates.count(1) > 0)
      << "degenerate min_start == min_end == probe.start entry dropped";
  EXPECT_EQ(candidates.count(2), 0u);

  // The exact selection stays equivalent to the full scan.
  auto indexed = index->SelectBefore(r, probe);
  ASSERT_TRUE(indexed.ok());
  OngoingInterval probe_iv = OngoingInterval::Fixed(probe.start, probe.end);
  OngoingRelation scanned = Select(r, [&probe_iv](const Tuple& t) {
    return Before(t.value(1).AsOngoingInterval(), probe_iv);
  });
  EXPECT_EQ(indexed->size(), scanned.size());
  for (TimePoint rt = -5; rt <= 20; ++rt) {
    EXPECT_TRUE(
        InstantiatedRelationsEqual(InstantiateRelation(*indexed, rt),
                                   InstantiateRelation(scanned, rt)))
        << "rt=" << rt;
  }
}

class IntervalIndexPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IntervalIndexPropertyTest, OverlapCandidatesAreSupersetOfExact) {
  ONGOINGDB_FUZZ_SEED_TRACE(GetParam());
  OngoingRelation r = MakeRelation(GetParam(), 120);
  auto index = IntervalIndex::Build(r, "VT");
  ASSERT_TRUE(index.ok());
  Rng rng(GetParam() + 1000);
  for (int probe_i = 0; probe_i < 10; ++probe_i) {
    TimePoint s = rng.Uniform(0, 200);
    FixedInterval probe{s, s + rng.Uniform(1, 50)};
    OngoingInterval probe_iv = OngoingInterval::Fixed(probe.start, probe.end);
    std::vector<size_t> c = index->OverlapCandidates(probe);
    std::set<size_t> candidates(c.begin(), c.end());
    for (size_t i = 0; i < r.size(); ++i) {
      OngoingBoolean exact =
          Overlaps(r.tuple(i).value(1).AsOngoingInterval(), probe_iv);
      if (!exact.IsAlwaysFalse()) {
        EXPECT_TRUE(candidates.count(i) > 0)
            << "tuple " << i << " satisfies overlaps at some rt but was "
            << "not a candidate";
      }
    }
  }
}

TEST_P(IntervalIndexPropertyTest, BeforeCandidatesAreSupersetOfExact) {
  ONGOINGDB_FUZZ_SEED_TRACE(GetParam());
  OngoingRelation r = MakeRelation(GetParam() + 7, 120);
  auto index = IntervalIndex::Build(r, "VT");
  ASSERT_TRUE(index.ok());
  Rng rng(GetParam() + 2000);
  for (int probe_i = 0; probe_i < 10; ++probe_i) {
    TimePoint s = rng.Uniform(0, 220);
    FixedInterval probe{s, s + rng.Uniform(1, 50)};
    OngoingInterval probe_iv = OngoingInterval::Fixed(probe.start, probe.end);
    std::vector<size_t> c = index->BeforeCandidates(probe);
    std::set<size_t> candidates(c.begin(), c.end());
    for (size_t i = 0; i < r.size(); ++i) {
      OngoingBoolean exact =
          Before(r.tuple(i).value(1).AsOngoingInterval(), probe_iv);
      if (!exact.IsAlwaysFalse()) {
        EXPECT_TRUE(candidates.count(i) > 0) << "tuple " << i;
      }
    }
  }
}

TEST_P(IntervalIndexPropertyTest, CandidatesPruneSomething) {
  // The index must actually prune on selective probes (not return
  // everything) — otherwise it is useless.
  OngoingRelation r = MakeRelation(GetParam() + 13, 200);
  auto index = IntervalIndex::Build(r, "VT");
  ASSERT_TRUE(index.ok());
  FixedInterval narrow{0, 2};
  EXPECT_LT(index->OverlapCandidates(narrow).size(), r.size());
}

TEST_P(IntervalIndexPropertyTest, SelectOverlapsMatchesFullScan) {
  ONGOINGDB_FUZZ_SEED_TRACE(GetParam());
  OngoingRelation r = MakeRelation(GetParam() + 31, 150);
  auto index = IntervalIndex::Build(r, "VT");
  ASSERT_TRUE(index.ok());
  Rng rng(GetParam() + 3000);
  for (int probe_i = 0; probe_i < 6; ++probe_i) {
    TimePoint s = rng.Uniform(0, 200);
    FixedInterval probe{s, s + rng.Uniform(1, 60)};
    OngoingInterval probe_iv = OngoingInterval::Fixed(probe.start, probe.end);
    auto indexed = index->SelectOverlaps(r, probe);
    ASSERT_TRUE(indexed.ok());
    // Reference: full-scan ongoing selection.
    OngoingRelation scanned = Select(r, [&probe_iv](const Tuple& t) {
      return Overlaps(t.value(1).AsOngoingInterval(), probe_iv);
    });
    EXPECT_EQ(indexed->size(), scanned.size());
    for (TimePoint rt = -20; rt <= 250; rt += 27) {
      EXPECT_TRUE(
          InstantiatedRelationsEqual(InstantiateRelation(*indexed, rt),
                                     InstantiateRelation(scanned, rt)))
          << "rt=" << rt;
    }
  }
}

TEST_P(IntervalIndexPropertyTest, SelectBeforeMatchesFullScan) {
  ONGOINGDB_FUZZ_SEED_TRACE(GetParam());
  OngoingRelation r = MakeRelation(GetParam() + 37, 150);
  auto index = IntervalIndex::Build(r, "VT");
  ASSERT_TRUE(index.ok());
  Rng rng(GetParam() + 4000);
  for (int probe_i = 0; probe_i < 6; ++probe_i) {
    TimePoint s = rng.Uniform(0, 220);
    FixedInterval probe{s, s + rng.Uniform(1, 60)};
    OngoingInterval probe_iv = OngoingInterval::Fixed(probe.start, probe.end);
    auto indexed = index->SelectBefore(r, probe);
    ASSERT_TRUE(indexed.ok());
    OngoingRelation scanned = Select(r, [&probe_iv](const Tuple& t) {
      return Before(t.value(1).AsOngoingInterval(), probe_iv);
    });
    EXPECT_EQ(indexed->size(), scanned.size());
    for (TimePoint rt = -20; rt <= 250; rt += 27) {
      EXPECT_TRUE(
          InstantiatedRelationsEqual(InstantiateRelation(*indexed, rt),
                                     InstantiateRelation(scanned, rt)))
          << "rt=" << rt;
    }
  }
}

TEST_P(IntervalIndexPropertyTest,
       AllProbeOpsReturnSupersetsForOngoingProbes) {
  ONGOINGDB_FUZZ_SEED_TRACE(GetParam());
  // The CandidatesInto dispatch with *ongoing* probe bounds — the form
  // the index-nested-loop join probes with (one probe per outer tuple).
  // For every op, every tuple satisfying the exact predicate at some
  // reference time must be a candidate.
  OngoingRelation r = MakeRelation(GetParam() + 41, 120);
  auto index = IntervalIndex::Build(r, "VT");
  ASSERT_TRUE(index.ok());
  Rng rng(GetParam() + 5000);
  std::vector<size_t> candidates_buf;
  for (int probe_i = 0; probe_i < 8; ++probe_i) {
    OngoingInterval probe_iv;
    switch (rng.Uniform(0, 2)) {
      case 0:
        probe_iv = OngoingInterval::SinceUntilNow(rng.Uniform(0, 200));
        break;
      case 1:
        probe_iv = OngoingInterval::FromNowUntil(rng.Uniform(0, 200));
        break;
      default: {
        TimePoint s = rng.Uniform(0, 200);
        probe_iv = OngoingInterval::Fixed(s, s + rng.Uniform(1, 50));
      }
    }
    const IntervalBounds probe = IntervalBounds::Of(probe_iv);
    struct Case {
      IntervalProbeOp op;
      OngoingBoolean (*exact)(const OngoingInterval&, const OngoingInterval&);
    };
    const Case cases[] = {
        {IntervalProbeOp::kOverlaps,
         [](const OngoingInterval& e, const OngoingInterval& p) {
           return Overlaps(e, p);
         }},
        {IntervalProbeOp::kBefore,
         [](const OngoingInterval& e, const OngoingInterval& p) {
           return Before(e, p);
         }},
        {IntervalProbeOp::kAfter,
         [](const OngoingInterval& e, const OngoingInterval& p) {
           return Before(p, e);
         }},
        {IntervalProbeOp::kMeets,
         [](const OngoingInterval& e, const OngoingInterval& p) {
           return Meets(e, p);
         }},
        {IntervalProbeOp::kMetBy,
         [](const OngoingInterval& e, const OngoingInterval& p) {
           return Meets(p, e);
         }},
    };
    for (const Case& c : cases) {
      index->CandidatesInto(c.op, probe, &candidates_buf);
      std::set<size_t> candidates(candidates_buf.begin(),
                                  candidates_buf.end());
      for (size_t i = 0; i < r.size(); ++i) {
        OngoingBoolean exact =
            c.exact(r.tuple(i).value(1).AsOngoingInterval(), probe_iv);
        if (!exact.IsAlwaysFalse()) {
          EXPECT_TRUE(candidates.count(i) > 0)
              << "op=" << IntervalProbeOpName(c.op) << " tuple " << i
              << " vt=" << r.tuple(i).value(1).ToString()
              << " probe=" << probe_iv.ToString();
        }
      }
    }
    // Contains: a point probe.
    const TimePoint t = rng.Uniform(-10, 220);
    index->CandidatesInto(IntervalProbeOp::kContains,
                          IntervalBounds::Point(t), &candidates_buf);
    std::set<size_t> candidates(candidates_buf.begin(), candidates_buf.end());
    for (size_t i = 0; i < r.size(); ++i) {
      OngoingBoolean exact = Contains(r.tuple(i).value(1).AsOngoingInterval(),
                                      OngoingTimePoint::Fixed(t));
      if (!exact.IsAlwaysFalse()) {
        EXPECT_TRUE(candidates.count(i) > 0)
            << "contains tuple " << i << " t=" << t;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, IntervalIndexPropertyTest,
                         ::testing::ValuesIn(plan_fuzz::FuzzSeeds(20)));

}  // namespace
}  // namespace ongoingdb
