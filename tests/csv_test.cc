// Tests of CSV import/export, including round trips of the paper's
// ongoing-value notation.
#include "storage/csv.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace ongoingdb {
namespace {

Schema BugSchema() {
  return Schema({{"BID", ValueType::kInt64},
                 {"C", ValueType::kString},
                 {"VT", ValueType::kOngoingInterval}});
}

TEST(CsvValueTest, ParseOngoingPointNotations) {
  auto now = ParseOngoingPointText("now");
  ASSERT_TRUE(now.ok());
  EXPECT_TRUE(now->IsNow());

  auto fixed = ParseOngoingPointText("10/17");
  ASSERT_TRUE(fixed.ok());
  EXPECT_EQ(*fixed, OngoingTimePoint::Fixed(MD(10, 17)));

  auto growing = ParseOngoingPointText("10/17+");
  ASSERT_TRUE(growing.ok());
  EXPECT_EQ(*growing, OngoingTimePoint::Growing(MD(10, 17)));

  auto limited = ParseOngoingPointText("+10/17");
  ASSERT_TRUE(limited.ok());
  EXPECT_EQ(*limited, OngoingTimePoint::Limited(MD(10, 17)));

  auto general = ParseOngoingPointText("10/17+10/19");
  ASSERT_TRUE(general.ok());
  EXPECT_EQ(*general, OngoingTimePoint(MD(10, 17), MD(10, 19)));

  auto with_year = ParseOngoingPointText("1994/09/01+1995/01/01");
  ASSERT_TRUE(with_year.ok());
  EXPECT_EQ(with_year->a(), Date(1994, 9, 1));

  EXPECT_FALSE(ParseOngoingPointText("garbage").ok());
  EXPECT_FALSE(ParseOngoingPointText("10/19+10/17").ok());  // a > b
}

TEST(CsvValueTest, PointNotationRoundTripsThroughToString) {
  const OngoingTimePoint points[] = {
      OngoingTimePoint::Now(), OngoingTimePoint::Fixed(MD(8, 15)),
      OngoingTimePoint::Growing(MD(1, 2)), OngoingTimePoint::Limited(MD(12, 31)),
      OngoingTimePoint(MD(3, 4), MD(5, 6))};
  for (const OngoingTimePoint& p : points) {
    auto parsed = ParseOngoingPointText(p.ToString());
    ASSERT_TRUE(parsed.ok()) << p.ToString();
    EXPECT_EQ(*parsed, p);
  }
}

TEST(CsvValueTest, ParseIntervalSet) {
  auto all = ParseIntervalSetText("{(-inf, +inf)}");
  ASSERT_TRUE(all.ok());
  EXPECT_TRUE(all->IsAll());

  auto empty = ParseIntervalSetText("{}");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->IsEmpty());

  auto two = ParseIntervalSetText("{[01/26, 08/16), [09/01, 09/10)}");
  ASSERT_TRUE(two.ok());
  EXPECT_EQ(*two, (IntervalSet{{MD(1, 26), MD(8, 16)}, {MD(9, 1), MD(9, 10)}}));

  EXPECT_FALSE(ParseIntervalSetText("[01/26, 08/16)").ok());  // no braces
}

TEST(CsvValueTest, ParseTypedValues) {
  auto i = ParseValueText(ValueType::kInt64, "42");
  ASSERT_TRUE(i.ok());
  EXPECT_EQ(i->AsInt64(), 42);
  auto b = ParseValueText(ValueType::kBool, "true");
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(b->AsBool());
  auto tp = ParseValueText(ValueType::kTimePoint, "08/15");
  ASSERT_TRUE(tp.ok());
  EXPECT_EQ(tp->AsTime(), MD(8, 15));
  auto iv = ParseValueText(ValueType::kOngoingInterval, "[01/25, now)");
  ASSERT_TRUE(iv.ok());
  EXPECT_EQ(iv->AsOngoingInterval().ToString(), "[01/25, now)");
  auto fi = ParseValueText(ValueType::kFixedInterval, "[01/25, 08/16)");
  ASSERT_TRUE(fi.ok());
  EXPECT_EQ(fi->AsInterval(), (FixedInterval{MD(1, 25), MD(8, 16)}));
  EXPECT_FALSE(ParseValueText(ValueType::kBool, "maybe").ok());
}

TEST(CsvTest, WriteProducesHeaderAndQuotedCells) {
  OngoingRelation r(BugSchema());
  ASSERT_TRUE(r.InsertWithRt(
                   {Value::Int64(500), Value::String("Spam, \"filter\""),
                    Value::Ongoing(OngoingInterval::SinceUntilNow(MD(1, 25)))},
                   IntervalSet{{MD(1, 26), MD(8, 16)}})
                  .ok());
  auto csv = ToCsvString(r);
  ASSERT_TRUE(csv.ok());
  EXPECT_NE(csv->find("BID,C,VT,RT"), std::string::npos);
  // Comma-bearing cells are quoted, inner quotes doubled.
  EXPECT_NE(csv->find("\"Spam, \"\"filter\"\"\""), std::string::npos);
  EXPECT_NE(csv->find("\"[01/25, now)\""), std::string::npos);
  EXPECT_NE(csv->find("\"{[01/26, 08/16)}\""), std::string::npos);
}

TEST(CsvTest, RoundTrip) {
  OngoingRelation r(BugSchema());
  ASSERT_TRUE(r.Insert({Value::Int64(500), Value::String("Spam filter"),
                        Value::Ongoing(OngoingInterval::SinceUntilNow(
                            MD(1, 25)))})
                  .ok());
  ASSERT_TRUE(r.InsertWithRt(
                   {Value::Int64(501), Value::String("UI, misc"),
                    Value::Ongoing(OngoingInterval::Fixed(MD(3, 30),
                                                          MD(8, 21)))},
                   IntervalSet{{MD(4, 1), MD(9, 1)}})
                  .ok());
  auto csv = ToCsvString(r);
  ASSERT_TRUE(csv.ok());
  auto restored = FromCsvString(BugSchema(), *csv);
  ASSERT_TRUE(restored.ok()) << restored.status();
  ASSERT_EQ(restored->size(), r.size());
  for (size_t i = 0; i < r.size(); ++i) {
    EXPECT_EQ(restored->tuple(i), r.tuple(i)) << "tuple " << i;
  }
}

TEST(CsvTest, RandomizedRoundTrip) {
  Rng rng(99);
  Schema schema({{"A", ValueType::kInt64},
                 {"T", ValueType::kOngoingTimePoint},
                 {"VT", ValueType::kOngoingInterval},
                 {"W", ValueType::kFixedInterval}});
  OngoingRelation r(schema);
  for (int i = 0; i < 60; ++i) {
    TimePoint a = rng.Uniform(0, 5000);
    OngoingTimePoint p(a, a + rng.Uniform(0, 400));
    TimePoint s = rng.Uniform(0, 5000);
    OngoingInterval vt(OngoingTimePoint(s, s + rng.Uniform(0, 100)),
                       OngoingTimePoint::Growing(s + rng.Uniform(100, 300)));
    TimePoint rt0 = rng.Uniform(0, 4000);
    ASSERT_TRUE(r.InsertWithRt(
                     {Value::Int64(rng.Uniform(0, 1000)), Value::Ongoing(p),
                      Value::Ongoing(vt),
                      Value::Interval({s, s + rng.Uniform(1, 50)})},
                     IntervalSet{{rt0, rt0 + rng.Uniform(1, 500)}})
                    .ok());
  }
  auto csv = ToCsvString(r);
  ASSERT_TRUE(csv.ok());
  auto restored = FromCsvString(schema, *csv);
  ASSERT_TRUE(restored.ok()) << restored.status();
  ASSERT_EQ(restored->size(), r.size());
  for (size_t i = 0; i < r.size(); ++i) {
    EXPECT_EQ(restored->tuple(i), r.tuple(i)) << "tuple " << i;
  }
}

TEST(CsvTest, ReadRejectsMalformedInput) {
  Schema schema = BugSchema();
  EXPECT_FALSE(FromCsvString(schema, "").ok());
  EXPECT_FALSE(FromCsvString(schema, "X,Y,Z\n").ok());  // wrong header
  EXPECT_FALSE(
      FromCsvString(schema, "BID,C,VT,RT\n1,2\n").ok());  // short row
  EXPECT_FALSE(FromCsvString(schema,
                             "BID,C,VT,RT\n"
                             "1,x,\"[01/25, now)\",\"not a set\"\n")
                   .ok());
  EXPECT_FALSE(FromCsvString(schema,
                             "BID,C,VT,RT\n"
                             "1,x,\"[01/25, now)\",\"{}\"\n")
                   .ok());  // empty RT rejected by InsertWithRt
}

}  // namespace
}  // namespace ongoingdb
