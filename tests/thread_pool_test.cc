// Tests for the fixed-pool task scheduler (util/thread_pool.h): every
// submitted task runs exactly once, TaskGroup::Wait really waits,
// groups are reusable across rounds (the exchange operator reopens its
// producers), and concurrent morsel-cursor claims partition a range
// disjointly — the property the parallel scans build on.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <vector>

#include "util/rng.h"
#include "util/thread_pool.h"

namespace ongoingdb {
namespace {

TEST(TaskSchedulerTest, RunsEverySubmittedTask) {
  TaskScheduler scheduler(4);
  std::atomic<int> sum{0};
  TaskGroup group(&scheduler);
  for (int i = 1; i <= 100; ++i) {
    group.Spawn([&sum, i] { sum.fetch_add(i, std::memory_order_relaxed); });
  }
  group.Wait();
  EXPECT_EQ(sum.load(), 5050);
}

TEST(TaskSchedulerTest, GroupIsReusableAcrossRounds) {
  TaskScheduler scheduler(2);
  TaskGroup group(&scheduler);
  std::atomic<int> count{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 10; ++i) {
      group.Spawn([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
    group.Wait();
    EXPECT_EQ(count.load(), (round + 1) * 10);
  }
}

TEST(TaskSchedulerTest, WaitWithNoTasksReturnsImmediately) {
  TaskGroup group;
  group.Wait();  // must not hang
}

TEST(TaskSchedulerTest, MoreTasksThanWorkersAllComplete) {
  // A 1-thread pool serializes but must still run everything.
  TaskScheduler scheduler(1);
  std::atomic<int> count{0};
  TaskGroup group(&scheduler);
  for (int i = 0; i < 64; ++i) {
    group.Spawn([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  group.Wait();
  EXPECT_EQ(count.load(), 64);
}

TEST(TaskSchedulerTest, MorselCursorClaimsAreDisjointAndComplete) {
  // The pattern the exchange scans rely on: workers fetch_add morsel
  // ranges off a shared cursor; together the claims must cover
  // [0, total) without overlap.
  constexpr size_t kTotal = 10000;
  constexpr size_t kMorsel = 37;
  std::atomic<size_t> cursor{0};
  std::vector<std::vector<size_t>> claims(4);
  TaskGroup group;
  for (size_t w = 0; w < claims.size(); ++w) {
    group.Spawn([&cursor, &claims, w] {
      while (true) {
        size_t begin = cursor.fetch_add(kMorsel, std::memory_order_relaxed);
        if (begin >= kTotal) break;
        claims[w].push_back(begin);
      }
    });
  }
  group.Wait();
  std::set<size_t> begins;
  for (const auto& worker_claims : claims) {
    for (size_t begin : worker_claims) {
      EXPECT_TRUE(begins.insert(begin).second) << "overlapping claim";
    }
  }
  size_t covered = 0;
  for (size_t begin : begins) {
    EXPECT_EQ(begin, covered);
    covered += kMorsel;
  }
  EXPECT_GE(covered, kTotal);
}

TEST(RngSplitTest, StreamsAreDeterministicAndPositionIndependent) {
  Rng a(42);
  // Burn draws on `a`: Split depends on the seed, not the position.
  for (int i = 0; i < 17; ++i) a.Uniform(0, 1000);
  Rng b(42);
  for (uint64_t stream = 0; stream < 8; ++stream) {
    Rng from_a = a.Split(stream);
    Rng from_b = b.Split(stream);
    for (int i = 0; i < 32; ++i) {
      EXPECT_EQ(from_a.Uniform(0, 1 << 30), from_b.Uniform(0, 1 << 30));
    }
  }
}

TEST(RngSplitTest, DistinctStreamsDiffer) {
  Rng base(7);
  Rng s0 = base.Split(0);
  Rng s1 = base.Split(1);
  bool any_difference = false;
  for (int i = 0; i < 32; ++i) {
    if (s0.Uniform(0, 1 << 30) != s1.Uniform(0, 1 << 30)) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

}  // namespace
}  // namespace ongoingdb
