// Tests for the Allen interval predicates and the intersection function on
// ongoing time intervals. Every worked example of the paper's Table II is
// verified exactly.
#include <gtest/gtest.h>

#include "core/operations.h"

namespace ongoingdb {
namespace {

OngoingInterval SinceNow(TimePoint s) {
  return OngoingInterval::SinceUntilNow(s);
}
OngoingInterval Fix(TimePoint s, TimePoint e) {
  return OngoingInterval::Fixed(s, e);
}

// Table II: [10/17, now) before [10/20, 10/25)
//   = b[{[10/18, 10/21)}, ...].
TEST(AllenTest, TableIIBefore) {
  OngoingBoolean b = Before(SinceNow(MD(10, 17)), Fix(MD(10, 20), MD(10, 25)));
  EXPECT_EQ(b.st(), (IntervalSet{{MD(10, 18), MD(10, 21)}}));
}

// Table II: [10/17, now) meets [10/20, 10/25)
//   = b[{[10/20, 10/21)}, ...].
TEST(AllenTest, TableIIMeets) {
  OngoingBoolean b = Meets(SinceNow(MD(10, 17)), Fix(MD(10, 20), MD(10, 25)));
  EXPECT_EQ(b.st(), (IntervalSet{{MD(10, 20), MD(10, 21)}}));
}

// Table II: [10/17, now) overlaps [10/14, 10/20)
//   = b[{[10/18, inf)}, ...].
TEST(AllenTest, TableIIOverlaps) {
  OngoingBoolean b =
      Overlaps(SinceNow(MD(10, 17)), Fix(MD(10, 14), MD(10, 20)));
  EXPECT_EQ(b.st(), (IntervalSet{{MD(10, 18), kMaxInfinity}}));
}

// Table II: [10/17, now) starts [10/17, 10/20)
//   = b[{[10/18, inf)}, ...].
TEST(AllenTest, TableIIStarts) {
  OngoingBoolean b = Starts(SinceNow(MD(10, 17)), Fix(MD(10, 17), MD(10, 20)));
  EXPECT_EQ(b.st(), (IntervalSet{{MD(10, 18), kMaxInfinity}}));
}

// Table II: [10/17, now) finishes [10/20, 10/25)
//   = b[{[10/25, 10/26)}, ...].
TEST(AllenTest, TableIIFinishes) {
  OngoingBoolean b =
      Finishes(SinceNow(MD(10, 17)), Fix(MD(10, 20), MD(10, 25)));
  EXPECT_EQ(b.st(), (IntervalSet{{MD(10, 25), MD(10, 26)}}));
}

// Table II: [10/20, 10/25) during [10/17, now)
//   = b[{[10/25, inf)}, ...].
TEST(AllenTest, TableIIDuring) {
  OngoingBoolean b = During(Fix(MD(10, 20), MD(10, 25)), SinceNow(MD(10, 17)));
  EXPECT_EQ(b.st(), (IntervalSet{{MD(10, 25), kMaxInfinity}}));
}

// Table II: [10/17, now) equals [10/17, 10/20)
//   = b[{[10/20, 10/21)}, ...].
TEST(AllenTest, TableIIEquals) {
  OngoingBoolean b = Equals(SinceNow(MD(10, 17)), Fix(MD(10, 17), MD(10, 20)));
  EXPECT_EQ(b.st(), (IntervalSet{{MD(10, 20), MD(10, 21)}}));
}

// Table II: [10/17, now) intersect [10/14, 10/20) = [10/17, +10/20).
TEST(AllenTest, TableIIIntersect) {
  OngoingInterval result =
      Intersect(SinceNow(MD(10, 17)), Fix(MD(10, 14), MD(10, 20)));
  EXPECT_EQ(result.start(), OngoingTimePoint::Fixed(MD(10, 17)));
  EXPECT_EQ(result.end(), OngoingTimePoint::Limited(MD(10, 20)));
  EXPECT_EQ(result.ToString(), "[10/17, +10/20)");
}

// Example 2 of the paper: the explicit non-empty check makes overlaps
// false while [10/17, now) is still empty.
TEST(AllenTest, Example2NonEmptyCheck) {
  OngoingBoolean b =
      Overlaps(SinceNow(MD(10, 17)), Fix(MD(10, 14), MD(10, 20)));
  EXPECT_FALSE(b.Instantiate(MD(10, 16)));  // first interval empty
  EXPECT_FALSE(b.Instantiate(MD(10, 17)));
  EXPECT_TRUE(b.Instantiate(MD(10, 18)));
}

// The running example's join predicate: b1.VT before p1.VT, which yields
// RT = {[01/26, 08/16)} (Sec. II).
TEST(AllenTest, RunningExampleBeforePredicate) {
  OngoingInterval b1_vt = SinceNow(MD(1, 25));
  OngoingInterval p1_vt = Fix(MD(8, 15), MD(8, 24));
  OngoingBoolean b = Before(b1_vt, p1_vt);
  EXPECT_EQ(b.st(), (IntervalSet{{MD(1, 26), MD(8, 16)}}));
  // Spot checks from the paper's truth table.
  EXPECT_TRUE(b.Instantiate(MD(8, 14)));
  EXPECT_TRUE(b.Instantiate(MD(8, 15)));
  EXPECT_FALSE(b.Instantiate(MD(8, 16)));
}

// The running example's intersection B.VT n L.VT for v1: [01/25, now) n
// [01/20, 08/18) = [01/25, +08/18).
TEST(AllenTest, RunningExampleIntersection) {
  OngoingInterval result =
      Intersect(SinceNow(MD(1, 25)), Fix(MD(1, 20), MD(8, 18)));
  EXPECT_EQ(result.ToString(), "[01/25, +08/18)");
}

TEST(AllenTest, EmptyOperandsMakePredicatesFalse) {
  OngoingInterval empty = Fix(5, 5);
  OngoingInterval nonempty = Fix(0, 10);
  EXPECT_TRUE(Before(empty, nonempty).IsAlwaysFalse());
  EXPECT_TRUE(Meets(empty, nonempty).IsAlwaysFalse());
  EXPECT_TRUE(Overlaps(empty, nonempty).IsAlwaysFalse());
  EXPECT_TRUE(Starts(empty, nonempty).IsAlwaysFalse());
  EXPECT_TRUE(Finishes(empty, nonempty).IsAlwaysFalse());
  // during and equals have explicit empty-operand clauses:
  EXPECT_TRUE(During(empty, nonempty).IsAlwaysTrue());
  EXPECT_TRUE(Equals(empty, Fix(7, 3)).IsAlwaysTrue());
  EXPECT_TRUE(Equals(empty, nonempty).IsAlwaysFalse());
}

TEST(AllenTest, FixedCounterpartsAgreeOnFixedInputs) {
  // On purely fixed intervals the ongoing predicates must equal their
  // fixed counterparts at every reference time.
  struct Case {
    FixedInterval x, y;
  };
  const Case cases[] = {
      {{0, 5}, {5, 9}},  {{0, 5}, {3, 9}},  {{0, 9}, {2, 4}},
      {{2, 4}, {0, 9}},  {{0, 5}, {0, 5}},  {{0, 5}, {0, 9}},
      {{0, 5}, {7, 9}},  {{3, 3}, {0, 9}},  {{3, 3}, {4, 4}},
      {{4, 2}, {0, 9}},
  };
  for (const Case& c : cases) {
    OngoingInterval ox = Fix(c.x.start, c.x.end);
    OngoingInterval oy = Fix(c.y.start, c.y.end);
    EXPECT_EQ(Before(ox, oy).IsAlwaysTrue(), BeforeF(c.x, c.y));
    EXPECT_EQ(Meets(ox, oy).IsAlwaysTrue(), MeetsF(c.x, c.y));
    EXPECT_EQ(Overlaps(ox, oy).IsAlwaysTrue(), OverlapsF(c.x, c.y));
    EXPECT_EQ(Starts(ox, oy).IsAlwaysTrue(), StartsF(c.x, c.y));
    EXPECT_EQ(Finishes(ox, oy).IsAlwaysTrue(), FinishesF(c.x, c.y));
    EXPECT_EQ(During(ox, oy).IsAlwaysTrue(), DuringF(c.x, c.y));
    EXPECT_EQ(Equals(ox, oy).IsAlwaysTrue(), EqualsF(c.x, c.y));
  }
}

// Table IV of the paper: the RT cardinality of predicate results is 1 for
// all predicates on expanding/shrinking operands, and at most 2 for
// overlaps on expanding+shrinking.
TEST(AllenTest, TableIVCardinalityExamples) {
  OngoingInterval expanding = SinceNow(MD(3, 10));
  OngoingInterval shrinking = OngoingInterval::FromNowUntil(MD(9, 20));
  EXPECT_LE(Before(expanding, Fix(MD(5, 1), MD(6, 1))).st().IntervalCount(),
            1u);
  EXPECT_LE(Overlaps(expanding, Fix(MD(5, 1), MD(6, 1))).st().IntervalCount(),
            1u);
  EXPECT_LE(Overlaps(shrinking, Fix(MD(5, 1), MD(6, 1))).st().IntervalCount(),
            1u);
  // expanding + shrinking can produce cardinality 2 for overlaps.
  OngoingBoolean b = Overlaps(expanding, shrinking);
  EXPECT_LE(b.st().IntervalCount(), 2u);
}

}  // namespace
}  // namespace ongoingdb
