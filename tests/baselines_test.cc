// Tests of the related-work baselines: Clifford instantiation, Torp's Tf
// domain (including its non-closure, Table I), the Forever substitution's
// incorrectness, and Anselma's partial instantiation.
#include <gtest/gtest.h>

#include "baselines/anselma.h"
#include "baselines/clifford.h"
#include "baselines/forever.h"
#include "baselines/torp.h"
#include "core/operations.h"

namespace ongoingdb {
namespace {

OngoingRelation BugsRelation() {
  OngoingRelation b(Schema({{"BID", ValueType::kInt64},
                            {"VT", ValueType::kOngoingInterval}}));
  EXPECT_TRUE(b.Insert({Value::Int64(500),
                        Value::Ongoing(
                            OngoingInterval::SinceUntilNow(MD(1, 25)))})
                  .ok());
  EXPECT_TRUE(b.Insert({Value::Int64(501),
                        Value::Ongoing(
                            OngoingInterval::Fixed(MD(3, 30), MD(8, 21)))})
                  .ok());
  return b;
}

TEST(CliffordTest, SelectInstantiatesThenFilters) {
  OngoingRelation b = BugsRelation();
  // Bugs open before patch [08/15, 08/24), evaluated at rt = 05/14.
  ExprPtr pred = BeforeExpr(
      Col("VT"), Lit(Value::Interval({MD(8, 15), MD(8, 24)})));
  auto result = CliffordSelect(b, pred, MD(5, 14));
  ASSERT_TRUE(result.ok());
  // At 05/14 bug 500's interval is [01/25, 05/14): before the patch.
  // Bug 501 ends 08/21, after the patch start, and does not qualify.
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ(result->tuple(0).value(0).AsInt64(), 500);
  // The result contains fixed values only.
  EXPECT_EQ(result->tuple(0).value(1).type(), ValueType::kFixedInterval);
}

TEST(CliffordTest, ResultsGetInvalidatedAsTimePassesBy) {
  // The same query at a later reference time yields a different result:
  // Clifford results are only valid at their reference time.
  OngoingRelation b = BugsRelation();
  ExprPtr pred = BeforeExpr(
      Col("VT"), Lit(Value::Interval({MD(8, 15), MD(8, 24)})));
  auto early = CliffordSelect(b, pred, MD(5, 14));
  auto late = CliffordSelect(b, pred, MD(9, 30));
  ASSERT_TRUE(early.ok());
  ASSERT_TRUE(late.ok());
  // At 09/30, bug 500's instantiated interval [01/25, 09/30) is no
  // longer before the patch.
  EXPECT_EQ(early->size(), 1u);
  EXPECT_EQ(late->size(), 0u);
}

TEST(CliffordTest, CliffMaxExceedsAllDataPoints) {
  OngoingRelation b = BugsRelation();
  TimePoint rt = CliffMaxReferenceTime(b);
  EXPECT_GT(rt, MD(8, 21));
  EXPECT_TRUE(IsFinite(rt));
}

TEST(CliffordTest, JoinAgreesWithOngoingInstantiation) {
  OngoingRelation b = BugsRelation();
  OngoingRelation p(Schema({{"PID", ValueType::kInt64},
                            {"VT", ValueType::kOngoingInterval}}));
  ASSERT_TRUE(p.Insert({Value::Int64(201),
                        Value::Ongoing(
                            OngoingInterval::Fixed(MD(8, 15), MD(8, 24)))})
                  .ok());
  ExprPtr pred = BeforeExpr(Col("B.VT"), Col("P.VT"));
  auto fixed = CliffordJoin(b, p, pred, MD(5, 14), "B", "P");
  ASSERT_TRUE(fixed.ok());
  EXPECT_EQ(fixed->size(), 1u);
}

// --- Torp's Tf domain ------------------------------------------------------

TEST(TorpTest, InstantiationSemantics) {
  TfTimePoint min_now = TfTimePoint::MinNow(MD(10, 17));
  EXPECT_EQ(min_now.Instantiate(MD(10, 10)), MD(10, 10));
  EXPECT_EQ(min_now.Instantiate(MD(10, 25)), MD(10, 17));
  TfTimePoint max_now = TfTimePoint::MaxNow(MD(10, 17));
  EXPECT_EQ(max_now.Instantiate(MD(10, 10)), MD(10, 17));
  EXPECT_EQ(max_now.Instantiate(MD(10, 25)), MD(10, 25));
}

TEST(TorpTest, TfEmbedsIntoOmega) {
  // min(a, now) = +a and max(a, now) = a+ (the paper's Fig. 3 shapes).
  EXPECT_EQ(TfTimePoint::MinNow(MD(10, 17)).ToOmega(),
            OngoingTimePoint::Limited(MD(10, 17)));
  EXPECT_EQ(TfTimePoint::MaxNow(MD(10, 17)).ToOmega(),
            OngoingTimePoint::Growing(MD(10, 17)));
  EXPECT_EQ(TfTimePoint::Now().ToOmega(), OngoingTimePoint::Now());
  // Instantiations agree everywhere.
  for (TimePoint rt = MD(10, 1); rt <= MD(11, 1); ++rt) {
    EXPECT_EQ(TfTimePoint::MinNow(MD(10, 17)).Instantiate(rt),
              TfTimePoint::MinNow(MD(10, 17)).ToOmega().Instantiate(rt));
  }
}

TEST(TorpTest, TfIsNotClosedUnderMinMax) {
  // Table I: min(max(a, now), b) with a < b is the general ongoing point
  // a+b, which Tf cannot represent.
  auto inner = TfTimePoint::MaxNow(MD(10, 17));  // a+
  auto result = TfTimePoint::Min(inner, TfTimePoint::Fixed(MD(10, 19)));
  EXPECT_FALSE(result.has_value());
  // Omega represents it exactly (closure, Theorem 1).
  OngoingTimePoint omega =
      Min(inner.ToOmega(), OngoingTimePoint::Fixed(MD(10, 19)));
  EXPECT_EQ(omega, OngoingTimePoint(MD(10, 17), MD(10, 19)));
}

TEST(TorpTest, SimpleMinMaxStayInTf) {
  auto r1 = TfTimePoint::Min(TfTimePoint::Fixed(MD(10, 17)),
                             TfTimePoint::Now());
  ASSERT_TRUE(r1.has_value());
  EXPECT_EQ(*r1, TfTimePoint::MinNow(MD(10, 17)));
  auto r2 = TfTimePoint::Max(TfTimePoint::Fixed(MD(10, 17)),
                             TfTimePoint::Now());
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(*r2, TfTimePoint::MaxNow(MD(10, 17)));
}

TEST(TorpTest, IntersectionStaysSymbolicForSimpleShapes) {
  // [10/14, now) n [10/17, now): representable in Tf.
  auto result =
      TfIntersect(TfTimePoint::Fixed(MD(10, 14)), TfTimePoint::Now(),
                  TfTimePoint::Fixed(MD(10, 17)), TfTimePoint::Now());
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->first, TfTimePoint::Fixed(MD(10, 17)));
  EXPECT_EQ(result->second, TfTimePoint::Now());
}

TEST(TorpTest, IntersectionLeavesTfForComplexEndpoints) {
  // [10/17, 10/22) n [10/17, now): the end point min(10/22, now) is
  // representable, but end min(max(..),..) shapes are not; verify the
  // representable case and a non-representable nesting.
  auto ok = TfIntersect(TfTimePoint::Fixed(MD(10, 17)),
                        TfTimePoint::Fixed(MD(10, 22)),
                        TfTimePoint::Fixed(MD(10, 17)), TfTimePoint::Now());
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->second, TfTimePoint::MinNow(MD(10, 22)));
  // Nesting with a growing start leaves Tf.
  auto bad =
      TfIntersect(TfTimePoint::MaxNow(MD(10, 17)),
                  TfTimePoint::Fixed(MD(10, 22)),
                  TfTimePoint::Fixed(MD(10, 10)), TfTimePoint::MinNow(MD(10, 19)));
  (void)bad;  // either representation outcome is acceptable for starts;
              // the domain limitation is witnessed in TfIsNotClosed.
}

// --- Forever ---------------------------------------------------------------

TEST(ForeverTest, RewriteReplacesNowWithForever) {
  OngoingRelation b = BugsRelation();
  OngoingRelation rewritten = ForeverRewrite(b);
  ASSERT_EQ(rewritten.size(), 2u);
  EXPECT_EQ(rewritten.tuple(0).value(1).AsInterval().end, kForever);
  EXPECT_EQ(rewritten.tuple(1).value(1).AsInterval(),
            (FixedInterval{MD(3, 30), MD(8, 21)}));
}

TEST(ForeverTest, Sec3CounterexampleBug500Disappears) {
  // "Which bugs might be resolved before patch 201 goes live?" at
  // rt = 05/14: the correct answer includes bug 500; with Forever it is
  // wrongly excluded because [01/25, Forever) is never before the patch.
  OngoingRelation b = BugsRelation();
  FixedInterval patch{MD(8, 15), MD(8, 24)};

  // Correct (ongoing) semantics at 05/14.
  OngoingInterval bug500 = b.tuple(0).value(1).AsOngoingInterval();
  OngoingBoolean correct = Before(
      bug500, OngoingInterval::Fixed(patch.start, patch.end));
  EXPECT_TRUE(correct.Instantiate(MD(5, 14)));

  // Forever semantics: never before.
  OngoingRelation rewritten = ForeverRewrite(b);
  FixedInterval forever500 = rewritten.tuple(0).value(1).AsInterval();
  EXPECT_FALSE(BeforeF(forever500, patch));
}

// --- Anselma ---------------------------------------------------------------

TEST(AnselmaTest, SymbolicIntersectionOfTwoNowEndings) {
  // [10/14, now) n [10/17, now) = [10/17, now) stays uninstantiated.
  TnowInterval i1{TnowPoint::Fixed(MD(10, 14)), TnowPoint::Now()};
  TnowInterval i2{TnowPoint::Fixed(MD(10, 17)), TnowPoint::Now()};
  AnselmaIntersection result = AnselmaIntersect(i1, i2, MD(10, 20));
  ASSERT_TRUE(result.stayed_symbolic);
  EXPECT_EQ(result.symbolic.start, TnowPoint::Fixed(MD(10, 17)));
  EXPECT_TRUE(result.symbolic.end.is_now);
}

TEST(AnselmaTest, MixedEndpointsForceInstantiation) {
  // [10/17, 10/22) n [10/17, now) must instantiate: at rt = 10/20 the
  // result is [10/17, 10/20) — valid only at that reference time.
  TnowInterval i1{TnowPoint::Fixed(MD(10, 17)), TnowPoint::Fixed(MD(10, 22))};
  TnowInterval i2{TnowPoint::Fixed(MD(10, 17)), TnowPoint::Now()};
  AnselmaIntersection result = AnselmaIntersect(i1, i2, MD(10, 20));
  ASSERT_FALSE(result.stayed_symbolic);
  EXPECT_EQ(result.instantiated, (FixedInterval{MD(10, 17), MD(10, 20)}));
  // Omega represents the same intersection symbolically: [10/17, +10/22)
  // — valid at every reference time.
  OngoingInterval omega =
      Intersect(OngoingInterval::Fixed(MD(10, 17), MD(10, 22)),
                OngoingInterval::SinceUntilNow(MD(10, 17)));
  EXPECT_EQ(omega.ToString(), "[10/17, +10/22)");
  EXPECT_EQ(omega.Instantiate(MD(10, 20)), result.instantiated);
}

}  // namespace
}  // namespace ongoingdb
