// Cross-layer integration property tests: randomized SQL queries over
// generated data sets, executed end-to-end (lexer -> parser -> optimizer
// -> executor), verified against Clifford-mode execution at swept
// reference times — the paper's snapshot-equivalence criterion applied
// to whole queries:
//
//     forall rt:  ||Q(D)||rt == Q(||D||rt)
#include <gtest/gtest.h>

#include "datasets/synthetic.h"
#include "query/executor.h"
#include "query/optimizer.h"
#include "sql/parser.h"
#include "util/rng.h"

namespace ongoingdb {
namespace {

class IntegrationPropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    datasets::SyntheticOptions options;
    options.cardinality = 120;
    options.key_cardinality = 8;
    options.history_years = 2;
    options.seed = GetParam() * 7 + 3;
    options.kind = GetParam() % 2 == 0 ? datasets::OngoingKind::kExpanding
                                       : datasets::OngoingKind::kShrinking;
    catalog_.Register("R", datasets::GenerateSynthetic(options));
    options.seed += 1;
    options.cardinality = 80;
    catalog_.Register("S", datasets::GenerateSynthetic(options));
  }

  // Verifies ||Q(D)||rt == Q(||D||rt) for a parsed query across a sweep
  // of reference times including ones before, inside, and after the
  // data history.
  void VerifySnapshotEquivalence(const std::string& query) {
    auto plan = sql::ParseQuery(query, catalog_);
    ASSERT_TRUE(plan.ok()) << query << ": " << plan.status();
    auto optimized = Optimize(*plan);
    ASSERT_TRUE(optimized.ok());
    auto ongoing = Execute(*optimized);
    ASSERT_TRUE(ongoing.ok()) << query << ": " << ongoing.status();
    const TimePoint end = Date(2019, 1, 1);
    for (TimePoint rt = end - 3 * 365; rt <= end + 365; rt += 73) {
      auto clifford = ExecuteAtReferenceTime(*optimized, rt);
      ASSERT_TRUE(clifford.ok()) << query;
      EXPECT_TRUE(InstantiatedRelationsEqual(
          InstantiateRelation(*ongoing, rt), *clifford))
          << query << " differs at rt=" << FormatTimePoint(rt);
    }
  }

  sql::Catalog catalog_;
};

TEST_P(IntegrationPropertyTest, SelectionWithTemporalPredicate) {
  VerifySnapshotEquivalence(
      "SELECT * FROM R WHERE VT OVERLAPS PERIOD ['2018/09/01', "
      "'2018/12/01')");
}

TEST_P(IntegrationPropertyTest, SelectionWithMixedConjunction) {
  VerifySnapshotEquivalence(
      "SELECT * FROM R WHERE K < 4 AND VT BEFORE PERIOD ['2018/11/01', "
      "'2018/12/15')");
}

TEST_P(IntegrationPropertyTest, SelectionWithDisjunctionAndNegation) {
  VerifySnapshotEquivalence(
      "SELECT * FROM R WHERE K = 0 OR NOT VT DURING PERIOD ['2017/01/01', "
      "'2018/12/31')");
}

TEST_P(IntegrationPropertyTest, ContainsTimeslice) {
  VerifySnapshotEquivalence(
      "SELECT * FROM R WHERE VT CONTAINS DATE '2018/10/15'");
}

TEST_P(IntegrationPropertyTest, EquiTemporalJoin) {
  VerifySnapshotEquivalence(
      "SELECT * FROM R r JOIN S s ON r.K = s.K AND r.VT OVERLAPS s.VT");
}

TEST_P(IntegrationPropertyTest, JoinWithPostFilter) {
  VerifySnapshotEquivalence(
      "SELECT * FROM R r JOIN S s ON r.K = s.K "
      "WHERE r.VT BEFORE s.VT AND r.ID < 60");
}

TEST_P(IntegrationPropertyTest, MeetsAndFinishes) {
  VerifySnapshotEquivalence(
      "SELECT * FROM R WHERE VT MEETS PERIOD ['2018/06/01', '2018/09/01') "
      "OR VT FINISHES PERIOD ['2017/01/01', '2018/12/31')");
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, IntegrationPropertyTest,
                         ::testing::Range<uint64_t>(0, 12));

}  // namespace
}  // namespace ongoingdb
