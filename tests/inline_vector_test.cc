// Tests for InlineVector (the small-buffer storage behind IntervalSet):
// spill/unspill round-trips, move semantics, allocation behavior, and an
// equivalence property test of the small-buffer IntervalSet against a
// reference built on plain std::vector semantics.
#include "util/inline_vector.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/interval_set.h"
#include "util/alloc_counter.h"
#include "util/rng.h"

namespace ongoingdb {
namespace {

TEST(InlineVectorTest, StartsInlineAndEmpty) {
  InlineVector<int, 2> v;
  EXPECT_TRUE(v.empty());
  EXPECT_TRUE(v.is_inline());
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.capacity(), 2u);
}

TEST(InlineVectorTest, PushWithinInlineCapacityDoesNotAllocate) {
  AllocScope scope;
  InlineVector<int, 2> v;
  v.push_back(1);
  v.push_back(2);
  EXPECT_EQ(scope.count(), 0u);
  EXPECT_TRUE(v.is_inline());
  EXPECT_EQ(v[0], 1);
  EXPECT_EQ(v[1], 2);
}

TEST(InlineVectorTest, SpillRoundTrip) {
  InlineVector<int, 2> v;
  for (int i = 0; i < 100; ++i) v.push_back(i);
  EXPECT_FALSE(v.is_inline());
  ASSERT_EQ(v.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(v[i], i);

  // clear() keeps the spilled buffer so refills reuse capacity.
  size_t spilled_capacity = v.capacity();
  v.clear();
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.capacity(), spilled_capacity);
  {
    AllocScope scope;
    for (int i = 0; i < 100; ++i) v.push_back(2 * i);
    EXPECT_EQ(scope.count(), 0u) << "refill after clear() must reuse capacity";
  }
  for (int i = 0; i < 100; ++i) EXPECT_EQ(v[i], 2 * i);
}

TEST(InlineVectorTest, SpillPreservesElementsAcrossGrowth) {
  InlineVector<std::string, 2> v;
  for (int i = 0; i < 20; ++i) v.push_back("value-" + std::to_string(i));
  ASSERT_EQ(v.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(v[i], "value-" + std::to_string(i));
  }
}

TEST(InlineVectorTest, MoveOfInlineVectorMovesElements) {
  InlineVector<std::string, 4> a;
  a.push_back("alpha");
  a.push_back("beta");
  InlineVector<std::string, 4> b(std::move(a));
  EXPECT_TRUE(b.is_inline());
  ASSERT_EQ(b.size(), 2u);
  EXPECT_EQ(b[0], "alpha");
  EXPECT_EQ(b[1], "beta");
  EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move): defined state
}

TEST(InlineVectorTest, MoveOfSpilledVectorStealsBufferWithoutAllocating) {
  InlineVector<int, 2> a;
  for (int i = 0; i < 50; ++i) a.push_back(i);
  ASSERT_FALSE(a.is_inline());
  const int* heap_data = a.data();
  AllocScope scope;
  InlineVector<int, 2> b(std::move(a));
  EXPECT_EQ(scope.count(), 0u);
  EXPECT_EQ(b.data(), heap_data) << "move must steal the heap buffer";
  ASSERT_EQ(b.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(b[i], i);
  // The moved-from vector unspills back to its inline buffer and is
  // immediately usable.
  EXPECT_TRUE(a.is_inline());  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(a.empty());
  a.push_back(7);
  EXPECT_EQ(a[0], 7);
}

TEST(InlineVectorTest, MoveAssignmentReleasesOldContents) {
  InlineVector<std::string, 2> a;
  for (int i = 0; i < 10; ++i) a.push_back("a" + std::to_string(i));
  InlineVector<std::string, 2> b;
  for (int i = 0; i < 10; ++i) b.push_back("b" + std::to_string(i));
  b = std::move(a);
  ASSERT_EQ(b.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(b[i], "a" + std::to_string(i));
}

TEST(InlineVectorTest, CopySemantics) {
  InlineVector<std::string, 2> a;
  a.push_back("one");
  InlineVector<std::string, 2> b(a);
  EXPECT_EQ(a, b);
  b.push_back("two");
  EXPECT_FALSE(a == b);
  a = b;
  EXPECT_EQ(a, b);
  // Self-assignment is a no-op.
  a = *&a;
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a[1], "two");
}

TEST(InlineVectorTest, PushBackOfOwnElementSurvivesGrowth) {
  // std::vector guarantees v.push_back(v[0]) works even when it
  // reallocates; the small-buffer growth path must too.
  InlineVector<std::string, 2> v;
  v.push_back("first-element-long-enough-to-defeat-sso");
  v.push_back("second");
  ASSERT_EQ(v.size(), v.capacity());
  v.push_back(v[0]);  // grows: argument aliases the old buffer
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[2], "first-element-long-enough-to-defeat-sso");
  EXPECT_EQ(v[0], v[2]);
}

TEST(InlineVectorTest, PopBackAndClear) {
  InlineVector<int, 2> v{1, 2, 3};
  EXPECT_FALSE(v.is_inline());
  v.pop_back();
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v.back(), 2);
  v.clear();
  EXPECT_TRUE(v.empty());
}

// ---------------------------------------------------------------------------
// Equivalence of the small-buffer IntervalSet with reference vector-backed
// set semantics on randomized interval sets: the storage change must be
// invisible to every set operation.
// ---------------------------------------------------------------------------

class SmallBufferEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

IntervalSet RandomSet(Rng& rng) {
  std::vector<FixedInterval> ivs;
  const int n = static_cast<int>(rng.Uniform(0, 6));
  for (int i = 0; i < n; ++i) {
    TimePoint s = rng.Uniform(-50, 50);
    ivs.push_back({s, s + rng.Uniform(0, 20)});
  }
  return IntervalSet::FromUnsorted(std::move(ivs));
}

// Reference membership on the raw sorted vector representation.
bool ReferenceContains(const std::vector<FixedInterval>& ivs, TimePoint t) {
  for (const FixedInterval& iv : ivs) {
    if (iv.Contains(t)) return true;
  }
  return false;
}

std::vector<FixedInterval> ToVector(const IntervalSet& s) {
  return std::vector<FixedInterval>(s.intervals().begin(),
                                    s.intervals().end());
}

TEST_P(SmallBufferEquivalenceTest, MatchesVectorBackedBehavior) {
  Rng rng(GetParam() * 6364136223846793005ULL + 11);
  IntervalSet a = RandomSet(rng);
  IntervalSet b = RandomSet(rng);
  std::vector<FixedInterval> va = ToVector(a), vb = ToVector(b);

  // The representation invariant holds regardless of spill state.
  EXPECT_TRUE(IntervalSet::IsNormalized(va.data(), va.size()));

  IntervalSet inter = a.Intersect(b);
  IntervalSet uni = a.Union(b);
  IntervalSet diff = a.Difference(b);
  // The old implementation computed difference as Intersect(Complement());
  // the direct sweep must agree exactly.
  IntervalSet diff_reference = a.Intersect(b.Complement());
  EXPECT_EQ(diff, diff_reference);

  for (TimePoint t = -80; t <= 80; ++t) {
    const bool in_a = ReferenceContains(va, t);
    const bool in_b = ReferenceContains(vb, t);
    EXPECT_EQ(a.Contains(t), in_a) << t;
    EXPECT_EQ(inter.Contains(t), in_a && in_b) << t;
    EXPECT_EQ(uni.Contains(t), in_a || in_b) << t;
    EXPECT_EQ(diff.Contains(t), in_a && !in_b) << t;
  }

  // Round-trip through the checked vector constructor reproduces the set.
  EXPECT_EQ(IntervalSet(ToVector(uni)), uni);

  // Destination-passing variants agree with the allocating versions and
  // survive destination reuse (including a previously spilled one).
  IntervalSet scratch = IntervalSet::FromUnsorted(
      {{0, 1}, {2, 3}, {4, 5}, {6, 7}, {8, 9}});
  a.IntersectInto(b, &scratch);
  EXPECT_EQ(scratch, inter);
  a.UnionInto(b, &scratch);
  EXPECT_EQ(scratch, uni);
  a.DifferenceInto(b, &scratch);
  EXPECT_EQ(scratch, diff);
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, SmallBufferEquivalenceTest,
                         ::testing::Range<uint64_t>(0, 60));

}  // namespace
}  // namespace ongoingdb
