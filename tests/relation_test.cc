// Unit tests for values, schemas, tuples, ongoing relations, and the
// relation-level bind operator.
#include "relation/relation.h"

#include <gtest/gtest.h>

namespace ongoingdb {
namespace {

Schema BugSchema() {
  return Schema({{"BID", ValueType::kInt64},
                 {"C", ValueType::kString},
                 {"VT", ValueType::kOngoingInterval}});
}

TEST(ValueTest, TypeTagsAndAccessors) {
  EXPECT_EQ(Value::Int64(7).AsInt64(), 7);
  EXPECT_EQ(Value::String("x").AsString(), "x");
  EXPECT_EQ(Value::Bool(true).AsBool(), true);
  EXPECT_EQ(Value::Time(MD(8, 15)).AsTime(), MD(8, 15));
  EXPECT_TRUE(Value::Null().is_null());
  Value iv = Value::Ongoing(OngoingInterval::SinceUntilNow(MD(1, 25)));
  EXPECT_EQ(iv.type(), ValueType::kOngoingInterval);
}

TEST(ValueTest, InstantiateOngoingValues) {
  Value p = Value::Ongoing(OngoingTimePoint::Now());
  Value at = p.Instantiate(MD(8, 15));
  EXPECT_EQ(at.type(), ValueType::kTimePoint);
  EXPECT_EQ(at.AsTime(), MD(8, 15));

  Value iv = Value::Ongoing(OngoingInterval::SinceUntilNow(MD(1, 25)));
  Value iv_at = iv.Instantiate(MD(8, 15));
  EXPECT_EQ(iv_at.type(), ValueType::kFixedInterval);
  EXPECT_EQ(iv_at.AsInterval(), (FixedInterval{MD(1, 25), MD(8, 15)}));

  // Fixed values are unchanged.
  EXPECT_EQ(Value::Int64(3).Instantiate(MD(8, 15)), Value::Int64(3));
}

TEST(ValueTest, OngoingValueEqualMixesFamilies) {
  // fixed timepoint vs now: equal only at that reference time.
  OngoingBoolean eq = OngoingValueEqual(
      Value::Time(MD(10, 17)), Value::Ongoing(OngoingTimePoint::Now()));
  EXPECT_EQ(eq.st(), (IntervalSet{{MD(10, 17), MD(10, 18)}}));
  // different value families are never equal.
  EXPECT_TRUE(OngoingValueEqual(Value::Int64(1), Value::String("1"))
                  .IsAlwaysFalse());
  // identical strings are always equal.
  EXPECT_TRUE(OngoingValueEqual(Value::String("a"), Value::String("a"))
                  .IsAlwaysTrue());
}

TEST(SchemaTest, AddAndLookup) {
  Schema s = BugSchema();
  EXPECT_EQ(s.num_attributes(), 3u);
  EXPECT_TRUE(s.Contains("VT"));
  auto idx = s.IndexOf("C");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(*idx, 1u);
  EXPECT_FALSE(s.IndexOf("missing").ok());
  EXPECT_FALSE(s.AddAttribute("VT", ValueType::kInt64).ok());  // duplicate
}

TEST(SchemaTest, QualifiedLookup) {
  Schema joined = BugSchema().Concat(BugSchema(), "B", "P");
  // Clashing names got qualified.
  EXPECT_TRUE(joined.Contains("B.VT"));
  EXPECT_TRUE(joined.Contains("P.VT"));
  // Unqualified suffix lookup is ambiguous now.
  EXPECT_FALSE(joined.IndexOf("VT").ok());
  EXPECT_TRUE(joined.IndexOf("B.VT").ok());
}

TEST(SchemaTest, InstantiatedSchema) {
  Schema s = BugSchema().Instantiated();
  EXPECT_EQ(s.attribute(2).type, ValueType::kFixedInterval);
  EXPECT_EQ(s.attribute(0).type, ValueType::kInt64);
  EXPECT_TRUE(BugSchema().HasOngoingAttributes());
  EXPECT_FALSE(s.HasOngoingAttributes());
}

TEST(RelationTest, BaseInsertGetsTrivialReferenceTime) {
  OngoingRelation r(BugSchema());
  ASSERT_TRUE(r.Insert({Value::Int64(500), Value::String("Spam filter"),
                        Value::Ongoing(OngoingInterval::SinceUntilNow(
                            MD(1, 25)))})
                  .ok());
  ASSERT_EQ(r.size(), 1u);
  EXPECT_TRUE(r.tuple(0).rt().IsAll());
}

TEST(RelationTest, InsertValidatesAgainstSchema) {
  OngoingRelation r(BugSchema());
  // Wrong arity.
  EXPECT_FALSE(r.Insert({Value::Int64(1)}).ok());
  // Wrong type.
  EXPECT_FALSE(r.Insert({Value::String("x"), Value::String("y"),
                         Value::Ongoing(OngoingInterval::SinceUntilNow(0))})
                   .ok());
  // Empty reference time is rejected.
  EXPECT_FALSE(
      r.InsertWithRt({Value::Int64(1), Value::String("c"),
                      Value::Ongoing(OngoingInterval::SinceUntilNow(0))},
                     IntervalSet::Empty())
          .ok());
}

TEST(RelationTest, BindOmitsTuplesOutsideTheirReferenceTime) {
  OngoingRelation r(BugSchema());
  ASSERT_TRUE(
      r.InsertWithRt({Value::Int64(1), Value::String("c"),
                      Value::Ongoing(OngoingInterval::SinceUntilNow(MD(1, 25)))},
                     IntervalSet{{MD(1, 26), MD(8, 16)}})
          .ok());
  // In range: present and instantiated.
  OngoingRelation at = InstantiateRelation(r, MD(5, 1));
  ASSERT_EQ(at.size(), 1u);
  EXPECT_EQ(at.tuple(0).value(2).AsInterval(),
            (FixedInterval{MD(1, 25), MD(5, 1)}));
  // Outside: omitted.
  EXPECT_EQ(InstantiateRelation(r, MD(9, 1)).size(), 0u);
  EXPECT_EQ(InstantiateRelation(r, MD(1, 25)).size(), 0u);
}

TEST(RelationTest, CoveredReferenceTimes) {
  OngoingRelation r(BugSchema());
  auto vt = Value::Ongoing(OngoingInterval::SinceUntilNow(0));
  ASSERT_TRUE(r.InsertWithRt({Value::Int64(1), Value::String("a"), vt},
                             IntervalSet{{0, 10}})
                  .ok());
  ASSERT_TRUE(r.InsertWithRt({Value::Int64(2), Value::String("b"), vt},
                             IntervalSet{{5, 20}})
                  .ok());
  EXPECT_EQ(r.CoveredReferenceTimes(), (IntervalSet{{0, 20}}));
}

TEST(RelationTest, InstantiatedRelationsEqualIgnoresDuplicates) {
  OngoingRelation a(BugSchema());
  OngoingRelation b(BugSchema());
  auto vt = Value::Ongoing(OngoingInterval::Fixed(0, 5));
  ASSERT_TRUE(a.Insert({Value::Int64(1), Value::String("x"), vt}).ok());
  ASSERT_TRUE(b.Insert({Value::Int64(1), Value::String("x"), vt}).ok());
  ASSERT_TRUE(b.Insert({Value::Int64(1), Value::String("x"), vt}).ok());
  EXPECT_TRUE(InstantiatedRelationsEqual(a, b));
  ASSERT_TRUE(b.Insert({Value::Int64(2), Value::String("y"), vt}).ok());
  EXPECT_FALSE(InstantiatedRelationsEqual(a, b));
}

}  // namespace
}  // namespace ongoingdb
