// The paper's central correctness criterion, as randomized property
// tests at the relation level: for every relational-algebra operator op
// and every reference time rt,
//
//     || op(R, S) ||rt  ==  opF( ||R||rt, ||S||rt )
//
// where the right-hand side applies the ordinary fixed-semantics
// operator to the instantiated inputs. This is Theorem 2, checked
// end-to-end on randomized ongoing relations with mixed attribute
// shapes.
#include <gtest/gtest.h>

#include "core/operations.h"
#include "relation/algebra.h"
#include "util/rng.h"

namespace ongoingdb {
namespace {

Schema TestSchema() {
  return Schema({{"K", ValueType::kInt64},
                 {"VT", ValueType::kOngoingInterval}});
}

OngoingInterval RandomOngoingInterval(Rng& rng) {
  auto random_point = [&rng]() {
    switch (rng.Uniform(0, 3)) {
      case 0:
        return OngoingTimePoint::Fixed(rng.Uniform(0, 60));
      case 1:
        return OngoingTimePoint::Now();
      case 2:
        return OngoingTimePoint::Growing(rng.Uniform(0, 60));
      default:
        return OngoingTimePoint::Limited(rng.Uniform(0, 60));
    }
  };
  return OngoingInterval(random_point(), random_point());
}

IntervalSet RandomRt(Rng& rng) {
  if (rng.Bernoulli(0.4)) return IntervalSet::All();
  std::vector<FixedInterval> ivs;
  int n = static_cast<int>(rng.Uniform(1, 3));
  for (int i = 0; i < n; ++i) {
    TimePoint s = rng.Uniform(-20, 60);
    ivs.push_back({s, s + rng.Uniform(1, 30)});
  }
  return IntervalSet::FromUnsorted(std::move(ivs));
}

OngoingRelation RandomRelation(Rng& rng, size_t n, int64_t key_range) {
  OngoingRelation r(TestSchema());
  for (size_t i = 0; i < n; ++i) {
    r.AppendUnchecked(Tuple({Value::Int64(rng.Uniform(0, key_range)),
                             Value::Ongoing(RandomOngoingInterval(rng))},
                            RandomRt(rng)));
  }
  return r;
}

// Fixed-semantics reference implementations over instantiated relations.
OngoingRelation SelectF(const OngoingRelation& r, const FixedInterval& probe) {
  OngoingRelation out(r.schema());
  for (const Tuple& t : r.tuples()) {
    if (OverlapsF(t.value(1).AsInterval(), probe)) out.AppendUnchecked(t);
  }
  return out;
}

class SnapshotPropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  static constexpr TimePoint kRtLo = -30;
  static constexpr TimePoint kRtHi = 90;
};

TEST_P(SnapshotPropertyTest, Selection) {
  Rng rng(GetParam() * 31337 + 5);
  OngoingRelation r = RandomRelation(rng, 30, 5);
  FixedInterval probe{rng.Uniform(0, 40), 0};
  probe.end = probe.start + rng.Uniform(1, 30);
  OngoingInterval probe_iv = OngoingInterval::Fixed(probe.start, probe.end);
  OngoingRelation selected = Select(r, [&probe_iv](const Tuple& t) {
    return Overlaps(t.value(1).AsOngoingInterval(), probe_iv);
  });
  for (TimePoint rt = kRtLo; rt <= kRtHi; rt += 2) {
    OngoingRelation lhs = InstantiateRelation(selected, rt);
    OngoingRelation rhs = SelectF(InstantiateRelation(r, rt), probe);
    EXPECT_TRUE(InstantiatedRelationsEqual(lhs, rhs)) << "rt=" << rt;
  }
}

TEST_P(SnapshotPropertyTest, Projection) {
  Rng rng(GetParam() * 31337 + 6);
  OngoingRelation r = RandomRelation(rng, 30, 5);
  auto projected = Project(r, std::vector<std::string>{"K"});
  ASSERT_TRUE(projected.ok());
  for (TimePoint rt = kRtLo; rt <= kRtHi; rt += 5) {
    OngoingRelation lhs = InstantiateRelation(*projected, rt);
    // piF over the instantiated input.
    OngoingRelation inst = InstantiateRelation(r, rt);
    auto rhs = Project(inst, std::vector<std::string>{"K"});
    ASSERT_TRUE(rhs.ok());
    EXPECT_TRUE(InstantiatedRelationsEqual(lhs, *rhs)) << "rt=" << rt;
  }
}

TEST_P(SnapshotPropertyTest, ThetaJoin) {
  Rng rng(GetParam() * 31337 + 7);
  OngoingRelation r = RandomRelation(rng, 15, 4);
  OngoingRelation s = RandomRelation(rng, 15, 4);
  OngoingRelation joined = ThetaJoin(
      r, s,
      [](const Tuple& a, const Tuple& b) {
        OngoingBoolean keys_equal = OngoingBoolean::FromBool(
            a.value(0).AsInt64() == b.value(0).AsInt64());
        return keys_equal.And(Overlaps(a.value(1).AsOngoingInterval(),
                                       b.value(1).AsOngoingInterval()));
      },
      "L", "R");
  for (TimePoint rt = kRtLo; rt <= kRtHi; rt += 3) {
    OngoingRelation lhs = InstantiateRelation(joined, rt);
    // Fixed join over instantiated inputs.
    OngoingRelation ri = InstantiateRelation(r, rt);
    OngoingRelation si = InstantiateRelation(s, rt);
    OngoingRelation rhs(ri.schema().Concat(si.schema(), "L", "R"));
    for (const Tuple& a : ri.tuples()) {
      for (const Tuple& b : si.tuples()) {
        if (a.value(0).AsInt64() == b.value(0).AsInt64() &&
            OverlapsF(a.value(1).AsInterval(), b.value(1).AsInterval())) {
          std::vector<Value> values = a.values();
          for (const Value& v : b.values()) values.push_back(v);
          rhs.AppendUnchecked(Tuple(std::move(values)));
        }
      }
    }
    EXPECT_TRUE(InstantiatedRelationsEqual(lhs, rhs)) << "rt=" << rt;
  }
}

TEST_P(SnapshotPropertyTest, UnionAndDifference) {
  Rng rng(GetParam() * 31337 + 8);
  // Narrow key range and identical interval pool raise the collision
  // rate so difference actually bites.
  OngoingRelation r = RandomRelation(rng, 20, 3);
  OngoingRelation s = RandomRelation(rng, 20, 3);
  auto united = Union(r, s);
  auto diffed = Difference(r, s);
  ASSERT_TRUE(united.ok());
  ASSERT_TRUE(diffed.ok());
  for (TimePoint rt = kRtLo; rt <= kRtHi; rt += 3) {
    OngoingRelation ri = InstantiateRelation(r, rt);
    OngoingRelation si = InstantiateRelation(s, rt);
    // Union.
    {
      OngoingRelation rhs(ri.schema());
      for (const Tuple& t : ri.tuples()) rhs.AppendUnchecked(t);
      for (const Tuple& t : si.tuples()) rhs.AppendUnchecked(t);
      EXPECT_TRUE(InstantiatedRelationsEqual(InstantiateRelation(*united, rt),
                                             rhs))
          << "union rt=" << rt;
    }
    // Difference, set semantics on instantiated values.
    {
      OngoingRelation rhs(ri.schema());
      for (const Tuple& t : ri.tuples()) {
        bool shadowed = false;
        for (const Tuple& u : si.tuples()) {
          if (t.values() == u.values()) {
            shadowed = true;
            break;
          }
        }
        if (!shadowed) rhs.AppendUnchecked(t);
      }
      EXPECT_TRUE(InstantiatedRelationsEqual(InstantiateRelation(*diffed, rt),
                                             rhs))
          << "difference rt=" << rt;
    }
  }
}

TEST_P(SnapshotPropertyTest, ComposedQuery) {
  // sigma(overlaps) over a theta join: composition preserves snapshot
  // equivalence.
  Rng rng(GetParam() * 31337 + 9);
  OngoingRelation r = RandomRelation(rng, 12, 3);
  OngoingRelation s = RandomRelation(rng, 12, 3);
  FixedInterval probe{10, 35};
  OngoingInterval probe_iv = OngoingInterval::Fixed(probe.start, probe.end);
  OngoingRelation joined = ThetaJoin(
      r, s,
      [](const Tuple& a, const Tuple& b) {
        return OngoingBoolean::FromBool(a.value(0).AsInt64() ==
                                        b.value(0).AsInt64());
      },
      "L", "R");
  OngoingRelation selected = Select(joined, [&probe_iv](const Tuple& t) {
    return Overlaps(t.value(1).AsOngoingInterval(), probe_iv);
  });
  for (TimePoint rt = kRtLo; rt <= kRtHi; rt += 7) {
    OngoingRelation ri = InstantiateRelation(r, rt);
    OngoingRelation si = InstantiateRelation(s, rt);
    OngoingRelation rhs(ri.schema().Concat(si.schema(), "L", "R"));
    for (const Tuple& a : ri.tuples()) {
      for (const Tuple& b : si.tuples()) {
        if (a.value(0).AsInt64() == b.value(0).AsInt64() &&
            OverlapsF(a.value(1).AsInterval(), probe)) {
          std::vector<Value> values = a.values();
          for (const Value& v : b.values()) values.push_back(v);
          rhs.AppendUnchecked(Tuple(std::move(values)));
        }
      }
    }
    EXPECT_TRUE(
        InstantiatedRelationsEqual(InstantiateRelation(selected, rt), rhs))
        << "rt=" << rt;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, SnapshotPropertyTest,
                         ::testing::Range<uint64_t>(0, 40));

}  // namespace
}  // namespace ongoingdb
