// Randomized property tests of the paper's central correctness criterion
// (Def. 4) for *all* operations on ongoing data types:
//
//     forall rt:  ||op(x1, ..., xn)||rt == opF(||x1||rt, ..., ||xn||rt)
//
// Each test draws random ongoing operands (mixing fixed, now, growing,
// limited and general a+b shapes) and sweeps reference times across and
// beyond the operand range.
#include <gtest/gtest.h>

#include "core/operations.h"
#include "util/alloc_counter.h"
#include "util/rng.h"

namespace ongoingdb {
namespace {

OngoingTimePoint RandomPoint(Rng& rng) {
  switch (rng.Uniform(0, 4)) {
    case 0:
      return OngoingTimePoint::Fixed(rng.Uniform(-25, 25));
    case 1:
      return OngoingTimePoint::Now();
    case 2:
      return OngoingTimePoint::Growing(rng.Uniform(-25, 25));
    case 3:
      return OngoingTimePoint::Limited(rng.Uniform(-25, 25));
    default: {
      TimePoint a = rng.Uniform(-25, 25);
      return OngoingTimePoint(a, a + rng.Uniform(0, 20));
    }
  }
}

OngoingInterval RandomInterval(Rng& rng) {
  return OngoingInterval(RandomPoint(rng), RandomPoint(rng));
}

class CorePropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  static constexpr TimePoint kRtLo = -60;
  static constexpr TimePoint kRtHi = 60;
};

TEST_P(CorePropertyTest, PointOperations) {
  Rng rng(GetParam() * 2654435761u + 1);
  OngoingTimePoint t1 = RandomPoint(rng);
  OngoingTimePoint t2 = RandomPoint(rng);
  OngoingBoolean lt = Less(t1, t2);
  OngoingTimePoint mn = Min(t1, t2);
  OngoingTimePoint mx = Max(t1, t2);
  for (TimePoint rt = kRtLo; rt <= kRtHi; ++rt) {
    TimePoint v1 = t1.Instantiate(rt), v2 = t2.Instantiate(rt);
    EXPECT_EQ(lt.Instantiate(rt), v1 < v2);
    EXPECT_EQ(mn.Instantiate(rt), std::min(v1, v2));
    EXPECT_EQ(mx.Instantiate(rt), std::max(v1, v2));
  }
}

TEST_P(CorePropertyTest, LogicalConnectives) {
  Rng rng(GetParam() * 2654435761u + 2);
  OngoingBoolean b1 = Less(RandomPoint(rng), RandomPoint(rng));
  OngoingBoolean b2 = Less(RandomPoint(rng), RandomPoint(rng));
  OngoingBoolean conj = b1.And(b2);
  OngoingBoolean disj = b1.Or(b2);
  OngoingBoolean neg = b1.Not();
  for (TimePoint rt = kRtLo; rt <= kRtHi; ++rt) {
    bool v1 = b1.Instantiate(rt), v2 = b2.Instantiate(rt);
    EXPECT_EQ(conj.Instantiate(rt), v1 && v2);
    EXPECT_EQ(disj.Instantiate(rt), v1 || v2);
    EXPECT_EQ(neg.Instantiate(rt), !v1);
  }
}

TEST_P(CorePropertyTest, AllenPredicates) {
  Rng rng(GetParam() * 2654435761u + 3);
  OngoingInterval i1 = RandomInterval(rng);
  OngoingInterval i2 = RandomInterval(rng);
  OngoingBoolean before = Before(i1, i2);
  OngoingBoolean meets = Meets(i1, i2);
  OngoingBoolean overlaps = Overlaps(i1, i2);
  OngoingBoolean starts = Starts(i1, i2);
  OngoingBoolean finishes = Finishes(i1, i2);
  OngoingBoolean during = During(i1, i2);
  OngoingBoolean equals = Equals(i1, i2);
  for (TimePoint rt = kRtLo; rt <= kRtHi; ++rt) {
    FixedInterval f1 = i1.Instantiate(rt), f2 = i2.Instantiate(rt);
    EXPECT_EQ(before.Instantiate(rt), BeforeF(f1, f2)) << rt;
    EXPECT_EQ(meets.Instantiate(rt), MeetsF(f1, f2)) << rt;
    EXPECT_EQ(overlaps.Instantiate(rt), OverlapsF(f1, f2)) << rt;
    EXPECT_EQ(starts.Instantiate(rt), StartsF(f1, f2)) << rt;
    EXPECT_EQ(finishes.Instantiate(rt), FinishesF(f1, f2)) << rt;
    EXPECT_EQ(during.Instantiate(rt), DuringF(f1, f2)) << rt;
    EXPECT_EQ(equals.Instantiate(rt), EqualsF(f1, f2)) << rt;
  }
}

TEST_P(CorePropertyTest, IntervalIntersection) {
  Rng rng(GetParam() * 2654435761u + 4);
  OngoingInterval i1 = RandomInterval(rng);
  OngoingInterval i2 = RandomInterval(rng);
  OngoingInterval inter = Intersect(i1, i2);
  for (TimePoint rt = kRtLo; rt <= kRtHi; ++rt) {
    FixedInterval expect =
        IntersectF(i1.Instantiate(rt), i2.Instantiate(rt));
    FixedInterval got = inter.Instantiate(rt);
    // Intersections of instantiated intervals and instantiations of the
    // ongoing intersection must be the same point set (empty intervals
    // may differ in representation).
    if (expect.empty()) {
      EXPECT_TRUE(got.empty()) << rt;
    } else {
      EXPECT_EQ(got, expect) << rt;
    }
  }
}

TEST_P(CorePropertyTest, ComposedPredicateExpressions) {
  // Deeper expressions: (i1 overlaps i2) ^ not(p1 < p2) v (i1 before i2).
  Rng rng(GetParam() * 2654435761u + 5);
  OngoingInterval i1 = RandomInterval(rng);
  OngoingInterval i2 = RandomInterval(rng);
  OngoingTimePoint p1 = RandomPoint(rng);
  OngoingTimePoint p2 = RandomPoint(rng);
  OngoingBoolean expr =
      Overlaps(i1, i2).And(Less(p1, p2).Not()).Or(Before(i1, i2));
  for (TimePoint rt = kRtLo; rt <= kRtHi; ++rt) {
    bool expect = (OverlapsF(i1.Instantiate(rt), i2.Instantiate(rt)) &&
                   !(p1.Instantiate(rt) < p2.Instantiate(rt))) ||
                  BeforeF(i1.Instantiate(rt), i2.Instantiate(rt));
    EXPECT_EQ(expr.Instantiate(rt), expect) << rt;
  }
}

TEST_P(CorePropertyTest, MinMaxClosureAndMonotonicity) {
  Rng rng(GetParam() * 2654435761u + 6);
  OngoingTimePoint t1 = RandomPoint(rng);
  OngoingTimePoint t2 = RandomPoint(rng);
  OngoingTimePoint mn = Min(t1, t2);
  OngoingTimePoint mx = Max(t1, t2);
  // Closure: results are valid elements of Omega.
  EXPECT_LE(mn.a(), mn.b());
  EXPECT_LE(mx.a(), mx.b());
  // min <= max pointwise.
  for (TimePoint rt = kRtLo; rt <= kRtHi; rt += 5) {
    EXPECT_LE(mn.Instantiate(rt), mx.Instantiate(rt));
  }
  // Instantiations are monotone in rt (clamp functions are monotone).
  TimePoint prev = t1.Instantiate(kRtLo);
  for (TimePoint rt = kRtLo + 1; rt <= kRtHi; ++rt) {
    TimePoint cur = t1.Instantiate(rt);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

TEST_P(CorePropertyTest, SmallIntervalSetOpsAreAllocationFree) {
  // Table IV: reference-time sets almost always hold 1-2 intervals. The
  // small-buffer IntervalSet must keep every such conjunction off the
  // heap — this pins down the hot path of join emission and predicate
  // evaluation. (This binary links the counting allocator.)
  Rng rng(GetParam() * 2654435761u + 7);
  auto random_small = [&rng] {
    std::vector<FixedInterval> ivs;
    const int n = static_cast<int>(rng.Uniform(1, 2));
    for (int i = 0; i < n; ++i) {
      TimePoint s = rng.Uniform(-100, 100);
      ivs.push_back({s, s + rng.Uniform(1, 40)});
    }
    return IntervalSet::FromUnsorted(std::move(ivs));
  };
  IntervalSet a = random_small();
  IntervalSet b = random_small();
  ASSERT_LE(a.IntervalCount(), 2u);
  ASSERT_LE(b.IntervalCount(), 2u);
  IntervalSet reused;
  OngoingBoolean x(a), y(b);
  AllocScope scope;
  IntervalSet direct = a.Intersect(b);
  a.IntersectInto(b, &reused);
  bool hit = a.Intersects(b);
  // Ongoing-boolean conjunction and negation ride on the same storage.
  OngoingBoolean conj = x.And(y);
  OngoingBoolean neg = x.Not();
  const uint64_t allocations = scope.count();
  EXPECT_EQ(allocations, 0u)
      << "set ops on 1-2 interval sets must not touch the heap: "
      << a.ToString() << " ^ " << b.ToString();
  EXPECT_EQ(hit, !direct.IsEmpty());
  EXPECT_EQ(reused, direct);
  EXPECT_EQ(conj.st(), direct);
  EXPECT_EQ(neg.st().Complement(), a);
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, CorePropertyTest,
                         ::testing::Range<uint64_t>(0, 100));

}  // namespace
}  // namespace ongoingdb
