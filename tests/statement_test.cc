// Tests of the SQL statement layer: CREATE TABLE, INSERT, and the
// temporal DELETE/UPDATE statements built on Torp's modification
// semantics.
#include "sql/statement.h"

#include <gtest/gtest.h>

namespace ongoingdb {
namespace sql {
namespace {

class StatementTest : public ::testing::Test {
 protected:
  Result<StatementResult> Run(const std::string& statement) {
    return RunStatement(statement, &catalog_);
  }

  Catalog catalog_;
};

TEST_F(StatementTest, CreateTable) {
  auto result = Run(
      "CREATE TABLE Bugs (BID INT, C TEXT, Open BOOL, Found DATE, VT "
      "PERIOD)");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_TRUE(catalog_.Contains("Bugs"));
  const OngoingRelation* bugs = *catalog_.Get("Bugs");
  EXPECT_EQ(bugs->schema().num_attributes(), 5u);
  EXPECT_EQ(bugs->schema().attribute(4).type, ValueType::kOngoingInterval);
  EXPECT_EQ(bugs->schema().attribute(3).type, ValueType::kTimePoint);
  // Duplicate creation fails.
  EXPECT_FALSE(Run("CREATE TABLE Bugs (X INT)").ok());
  // Unknown type fails.
  EXPECT_FALSE(Run("CREATE TABLE Other (X BLOB)").ok());
}

TEST_F(StatementTest, InsertRows) {
  ASSERT_TRUE(Run("CREATE TABLE Bugs (BID INT, C TEXT, VT PERIOD)").ok());
  auto result = Run(
      "INSERT INTO Bugs VALUES (500, 'Spam filter', "
      "PERIOD ['01/25', NOW))");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->affected, 1u);
  ASSERT_TRUE(
      Run("INSERT INTO Bugs VALUES (501, 'UI', PERIOD ['03/30', '08/21'))")
          .ok());
  const OngoingRelation* bugs = *catalog_.Get("Bugs");
  ASSERT_EQ(bugs->size(), 2u);
  EXPECT_EQ(bugs->tuple(0).value(2).AsOngoingInterval().ToString(),
            "[01/25, now)");
  // Type mismatch rejected.
  EXPECT_FALSE(Run("INSERT INTO Bugs VALUES ('x', 'y', 1)").ok());
  // Unknown table rejected.
  EXPECT_FALSE(Run("INSERT INTO Nope VALUES (1)").ok());
}

TEST_F(StatementTest, SelectDelegates) {
  ASSERT_TRUE(Run("CREATE TABLE Bugs (BID INT, VT PERIOD)").ok());
  ASSERT_TRUE(
      Run("INSERT INTO Bugs VALUES (500, PERIOD ['01/25', NOW))").ok());
  auto result = Run("SELECT * FROM Bugs WHERE BID = 500");
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->relation.has_value());
  EXPECT_EQ(result->relation->size(), 1u);
  EXPECT_EQ(result->affected, 1u);
}

TEST_F(StatementTest, TemporalDelete) {
  ASSERT_TRUE(Run("CREATE TABLE Bugs (BID INT, VT PERIOD)").ok());
  ASSERT_TRUE(
      Run("INSERT INTO Bugs VALUES (500, PERIOD ['01/25', NOW))").ok());
  ASSERT_TRUE(
      Run("INSERT INTO Bugs VALUES (501, PERIOD ['03/30', NOW))").ok());
  auto result = Run("DELETE FROM Bugs WHERE BID = 500 AT DATE '06/15'");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->affected, 1u);
  const OngoingRelation* bugs = *catalog_.Get("Bugs");
  ASSERT_EQ(bugs->size(), 2u);
  // The Torp semantics: end := min(now, 06/15) = +06/15.
  EXPECT_EQ(bugs->tuple(0).value(1).AsOngoingInterval().ToString(),
            "[01/25, +06/15)");
  EXPECT_EQ(bugs->tuple(1).value(1).AsOngoingInterval().ToString(),
            "[03/30, now)");
}

TEST_F(StatementTest, DeleteWithoutWhereAffectsAll) {
  ASSERT_TRUE(Run("CREATE TABLE Bugs (BID INT, VT PERIOD)").ok());
  ASSERT_TRUE(
      Run("INSERT INTO Bugs VALUES (1, PERIOD ['01/01', NOW))").ok());
  ASSERT_TRUE(
      Run("INSERT INTO Bugs VALUES (2, PERIOD ['02/01', NOW))").ok());
  auto result = Run("DELETE FROM Bugs AT DATE '06/01'");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->affected, 2u);
}

TEST_F(StatementTest, TemporalUpdate) {
  ASSERT_TRUE(Run("CREATE TABLE Staff (Name TEXT, Role TEXT, VT PERIOD)")
                  .ok());
  ASSERT_TRUE(Run("INSERT INTO Staff VALUES ('Ann', 'dev', "
                  "PERIOD ['01/01', NOW))")
                  .ok());
  auto result = Run(
      "UPDATE Staff SET Role = 'lead' WHERE Name = 'Ann' AT DATE '06/01'");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->affected, 1u);
  const OngoingRelation* staff = *catalog_.Get("Staff");
  ASSERT_EQ(staff->size(), 2u);
  EXPECT_EQ(staff->tuple(0).value(1).AsString(), "dev");
  EXPECT_EQ(staff->tuple(0).value(2).AsOngoingInterval().ToString(),
            "[01/01, +06/01)");
  EXPECT_EQ(staff->tuple(1).value(1).AsString(), "lead");
  EXPECT_EQ(staff->tuple(1).value(2).AsOngoingInterval().ToString(),
            "[06/01, now)");
}

TEST_F(StatementTest, ModificationRejectsOngoingPredicates) {
  ASSERT_TRUE(Run("CREATE TABLE Bugs (BID INT, VT PERIOD)").ok());
  ASSERT_TRUE(
      Run("INSERT INTO Bugs VALUES (1, PERIOD ['01/01', NOW))").ok());
  // Predicates over the ongoing VT attribute are not allowed in
  // modifications.
  EXPECT_FALSE(Run("DELETE FROM Bugs WHERE VT OVERLAPS "
                   "PERIOD ['01/01', '02/01') AT DATE '06/01'")
                   .ok());
}

TEST_F(StatementTest, SyntaxErrors) {
  EXPECT_FALSE(Run("").ok());
  EXPECT_FALSE(Run("DROP TABLE x").ok());
  EXPECT_FALSE(Run("CREATE TABLE").ok());
  EXPECT_FALSE(Run("INSERT INTO").ok());
  ASSERT_TRUE(Run("CREATE TABLE T (A INT, VT PERIOD)").ok());
  EXPECT_FALSE(Run("DELETE FROM T WHERE A = 1").ok());  // missing AT
  EXPECT_FALSE(Run("UPDATE T SET A 5 AT DATE '01/01'").ok());
  EXPECT_FALSE(Run("INSERT INTO T VALUES (1, PERIOD ['01/01', NOW)").ok());
}

TEST_F(StatementTest, EndToEndLifecycle) {
  // Create, fill, modify, query — and the query result reflects the
  // modification history at each reference time.
  ASSERT_TRUE(Run("CREATE TABLE C (ID INT, VT PERIOD)").ok());
  ASSERT_TRUE(Run("INSERT INTO C VALUES (1, PERIOD ['01/01', NOW))").ok());
  ASSERT_TRUE(Run("DELETE FROM C WHERE ID = 1 AT DATE '03/01'").ok());
  auto result = Run("SELECT * FROM C WHERE VT CONTAINS DATE '02/01'");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->relation->size(), 1u);
  // [01/01, +03/01) contains 02/01 from 02/02 on, at every later
  // reference time (the deletion capped the end at 03/01 > 02/01).
  EXPECT_EQ(result->relation->tuple(0).rt(),
            (IntervalSet{{MD(2, 2), kMaxInfinity}}));
}

}  // namespace
}  // namespace sql
}  // namespace ongoingdb
