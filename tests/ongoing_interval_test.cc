// Unit tests for ongoing time intervals (Sec. V-B, Fig. 4): instantiation,
// shape classification, and partial emptiness.
#include "core/ongoing_interval.h"

#include <gtest/gtest.h>

#include "core/operations.h"

namespace ongoingdb {
namespace {

TEST(OngoingIntervalTest, InstantiatesEndpointwise) {
  OngoingInterval iv = OngoingInterval::SinceUntilNow(MD(10, 17));
  FixedInterval at = iv.Instantiate(MD(10, 20));
  EXPECT_EQ(at, (FixedInterval{MD(10, 17), MD(10, 20)}));
}

TEST(OngoingIntervalTest, KindClassification) {
  EXPECT_EQ(OngoingInterval::Fixed(MD(10, 17), MD(10, 19)).Kind(),
            IntervalKind::kFixed);
  EXPECT_EQ(OngoingInterval::SinceUntilNow(MD(10, 17)).Kind(),
            IntervalKind::kExpanding);
  EXPECT_EQ(OngoingInterval::FromNowUntil(MD(10, 19)).Kind(),
            IntervalKind::kShrinking);
  OngoingInterval general(OngoingTimePoint(MD(10, 16), MD(10, 17)),
                          OngoingTimePoint(MD(10, 19), MD(10, 20)));
  EXPECT_EQ(general.Kind(), IntervalKind::kGeneral);
}

TEST(OngoingIntervalTest, ExpandingIntervalDurationGrows) {
  // [10/17, 10/19+10/21): duration grows up to rt = 10/21, then stays.
  OngoingInterval iv(OngoingTimePoint::Fixed(MD(10, 17)),
                     OngoingTimePoint(MD(10, 19), MD(10, 21)));
  auto duration_at = [&iv](TimePoint rt) {
    FixedInterval f = iv.Instantiate(rt);
    return f.end - f.start;
  };
  EXPECT_EQ(duration_at(MD(10, 18)), MD(10, 19) - MD(10, 17));
  EXPECT_EQ(duration_at(MD(10, 20)), MD(10, 20) - MD(10, 17));
  EXPECT_EQ(duration_at(MD(10, 21)), MD(10, 21) - MD(10, 17));
  EXPECT_EQ(duration_at(MD(10, 25)), MD(10, 21) - MD(10, 17));  // capped
}

TEST(OngoingIntervalTest, PartiallyEmptySinceUntilNow) {
  // [10/17, now) is empty up to rt = 10/17 and non-empty afterwards
  // (the paper's partial-emptiness example).
  OngoingInterval iv = OngoingInterval::SinceUntilNow(MD(10, 17));
  EXPECT_TRUE(iv.Instantiate(MD(10, 16)).empty());
  EXPECT_TRUE(iv.Instantiate(MD(10, 17)).empty());
  EXPECT_FALSE(iv.Instantiate(MD(10, 18)).empty());
  EXPECT_FALSE(iv.IsAlwaysEmpty());
  EXPECT_FALSE(iv.IsNeverEmpty());
  OngoingBoolean nonempty = NonEmpty(iv);
  EXPECT_EQ(nonempty.st(), (IntervalSet{{MD(10, 18), kMaxInfinity}}));
}

TEST(OngoingIntervalTest, NeverEmptyCases) {
  // Fig. 4 "never empty": b < c guarantees non-emptiness everywhere.
  EXPECT_TRUE(OngoingInterval::Fixed(MD(10, 17), MD(10, 19)).IsNeverEmpty());
  OngoingInterval expanding(OngoingTimePoint::Fixed(MD(10, 17)),
                            OngoingTimePoint(MD(10, 19), MD(10, 21)));
  EXPECT_TRUE(expanding.IsNeverEmpty());
}

TEST(OngoingIntervalTest, AlwaysEmptyCases) {
  EXPECT_TRUE(OngoingInterval::Fixed(MD(10, 19), MD(10, 17)).IsAlwaysEmpty());
  EXPECT_TRUE(OngoingInterval::Fixed(MD(10, 17), MD(10, 17)).IsAlwaysEmpty());
  // [now, now) is empty at every reference time.
  OngoingInterval now_now(OngoingTimePoint::Now(), OngoingTimePoint::Now());
  EXPECT_TRUE(now_now.IsAlwaysEmpty());
}

TEST(OngoingIntervalTest, ShrinkingPartialEmptiness) {
  // [10/16+, 10/19): non-empty only while the start has not yet grown to
  // the end (Fig. 4 bottom-right).
  OngoingInterval iv(OngoingTimePoint::Growing(MD(10, 16)),
                     OngoingTimePoint::Fixed(MD(10, 19)));
  EXPECT_FALSE(iv.Instantiate(MD(10, 17)).empty());
  EXPECT_FALSE(iv.Instantiate(MD(10, 18)).empty());
  EXPECT_TRUE(iv.Instantiate(MD(10, 19)).empty());
  EXPECT_TRUE(iv.Instantiate(MD(10, 25)).empty());
}

TEST(OngoingIntervalTest, ToString) {
  EXPECT_EQ(OngoingInterval::SinceUntilNow(MD(1, 25)).ToString(),
            "[01/25, now)");
  OngoingInterval v1(OngoingTimePoint::Fixed(MD(1, 25)),
                     OngoingTimePoint::Limited(MD(8, 18)));
  EXPECT_EQ(v1.ToString(), "[01/25, +08/18)");
}

}  // namespace
}  // namespace ongoingdb
