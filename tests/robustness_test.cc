// Cross-cutting robustness tests: plan rendering, expression rewriting,
// boundary values near the time-domain limits, storage fuzzing, and
// reopen-after-error drills for every physical operator kind.
#include <gtest/gtest.h>

#include "core/operations.h"
#include "query/executor.h"
#include "query/optimizer.h"
#include "storage/heap_file.h"
#include "testing/plan_fuzz.h"
#include "util/failpoint.h"
#include "util/rng.h"

namespace ongoingdb {
namespace {

TEST(PlanRenderingTest, TreeStructureVisible) {
  OngoingRelation r(Schema({{"K", ValueType::kInt64},
                            {"VT", ValueType::kOngoingInterval}}));
  PlanPtr plan = ProjectPlan(
      Filter(Join(Scan(&r, "R"), Scan(&r, "S"), Eq(Col("L.K"), Col("R.K")),
                  "L", "R", JoinAlgorithm::kSortMerge),
             Lt(Col("L.K"), Lit(int64_t{5}))),
      {"L.K"});
  std::string rendered = plan->ToString();
  EXPECT_NE(rendered.find("Project [L.K]"), std::string::npos);
  EXPECT_NE(rendered.find("Filter (L.K < 5)"), std::string::npos);
  EXPECT_NE(rendered.find("Join[sort-merge]"), std::string::npos);
  EXPECT_NE(rendered.find("Scan(R, 0 tuples)"), std::string::npos);
}

TEST(ExprRewriteTest, RenamesAllColumnKinds) {
  ExprPtr pred =
      And(Or(Eq(Col("L.A"), Col("R.B")), Not(Lt(Col("L.C"), Lit(int64_t{1})))),
          OverlapsExpr(IntersectExpr(Col("L.VT"), Col("R.VT")),
                       Lit(OngoingInterval::Fixed(0, 1))));
  ExprPtr rewritten = pred->RewriteColumns([](const std::string& name) {
    return name.substr(name.find('.') + 1);
  });
  std::vector<std::string> columns;
  rewritten->CollectColumns(&columns);
  EXPECT_EQ(columns, (std::vector<std::string>{"A", "B", "C", "VT", "VT"}));
  // The original is untouched (expressions are immutable).
  columns.clear();
  pred->CollectColumns(&columns);
  EXPECT_EQ(columns[0], "L.A");
}

TEST(BoundaryTest, OperationsAtDomainLimits) {
  // Points anchored at the domain limits stay consistent.
  OngoingTimePoint at_min = OngoingTimePoint::Fixed(kMinInfinity);
  OngoingTimePoint at_max = OngoingTimePoint::Fixed(kMaxInfinity);
  EXPECT_TRUE(Less(at_min, at_max).IsAlwaysTrue());
  EXPECT_TRUE(Less(at_max, at_min).IsAlwaysFalse());
  // now vs the limits.
  EXPECT_TRUE(Less(OngoingTimePoint::Now(), at_max)
                  .Instantiate(kMaxInfinity - 1));
  EXPECT_FALSE(Less(OngoingTimePoint::Now(), at_min).Instantiate(0));
  // Min/max stay in Omega at the limits.
  OngoingTimePoint mixed = Min(OngoingTimePoint::Now(), at_max);
  EXPECT_LE(mixed.a(), mixed.b());
}

TEST(BoundaryTest, LessThanNearUpperLimit) {
  // b + 1 == kMaxInfinity must not produce an invalid interval set.
  OngoingTimePoint t1(0, kMaxInfinity - 1);
  OngoingTimePoint t2(1, kMaxInfinity);
  OngoingBoolean b = Less(t1, t2);
  for (TimePoint rt : {TimePoint{-10}, TimePoint{0}, TimePoint{5},
                       kMaxInfinity - 2}) {
    EXPECT_EQ(b.Instantiate(rt), t1.Instantiate(rt) < t2.Instantiate(rt));
  }
}

TEST(BoundaryTest, IntervalSetMinMaxAccessors) {
  IntervalSet s{{5, 10}, {20, 30}};
  EXPECT_EQ(s.Min(), 5);
  EXPECT_EQ(s.MaxExclusive(), 30);
}

TEST(StorageFuzzTest, HeapFileRandomPageSizes) {
  Rng rng(123);
  Schema schema({{"ID", ValueType::kInt64},
                 {"S", ValueType::kString},
                 {"VT", ValueType::kOngoingInterval}});
  for (int round = 0; round < 5; ++round) {
    size_t page_size = static_cast<size_t>(rng.Uniform(512, 8192));
    HeapFile file(schema, page_size);
    OngoingRelation r(schema);
    const int n = static_cast<int>(rng.Uniform(10, 200));
    for (int i = 0; i < n; ++i) {
      ASSERT_TRUE(
          r.Insert({Value::Int64(i),
                    Value::String(rng.String(
                        static_cast<size_t>(rng.Uniform(0, 100)))),
                    Value::Ongoing(OngoingInterval::SinceUntilNow(
                        rng.Uniform(0, 1000)))})
              .ok());
    }
    ASSERT_TRUE(file.Load(r).ok());
    auto scanned = file.Scan();
    ASSERT_TRUE(scanned.ok());
    ASSERT_EQ(scanned->size(), r.size());
    for (size_t i = 0; i < r.size(); ++i) {
      EXPECT_EQ(scanned->tuple(i), r.tuple(i));
    }
    EXPECT_LE(file.UsedBytes(), file.TotalBytes());
  }
}

TEST(OptimizerRobustnessTest, NestedFiltersAndProjections) {
  OngoingRelation r(Schema({{"K", ValueType::kInt64},
                            {"VT", ValueType::kOngoingInterval}}));
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(r.Insert({Value::Int64(i),
                          Value::Ongoing(
                              OngoingInterval::SinceUntilNow(i * 3))})
                    .ok());
  }
  // Filter over filter over join over scans, with a projection on top.
  PlanPtr plan = ProjectPlan(
      Filter(Filter(Join(Scan(&r, "R"), Scan(&r, "S"),
                         Eq(Col("L.K"), Col("R.K")), "L", "R"),
                    Lt(Col("L.K"), Lit(int64_t{15}))),
             OverlapsExpr(Col("L.VT"), Lit(OngoingInterval::Fixed(10, 40)))),
      {"L.K"});
  auto optimized = Optimize(plan);
  ASSERT_TRUE(optimized.ok());
  auto plain = Execute(plan);
  auto opt = Execute(*optimized);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(opt.ok());
  EXPECT_EQ(plain->size(), opt->size());
  for (TimePoint rt = 0; rt <= 80; rt += 9) {
    EXPECT_TRUE(InstantiatedRelationsEqual(InstantiateRelation(*plain, rt),
                                           InstantiateRelation(*opt, rt)));
  }
}

TEST(OptimizerRobustnessTest, SchemaErrorsPropagate) {
  OngoingRelation r(Schema({{"K", ValueType::kInt64}}));
  // Projection of a missing column fails cleanly at schema derivation.
  PlanPtr plan = ProjectPlan(Scan(&r, "R"), {"Missing"});
  EXPECT_FALSE(OutputSchema(plan).ok());
  EXPECT_FALSE(Execute(plan).ok());
}

// --- reopen-after-error drills ----------------------------------------------
// Every operator kind is driven into an error at each stage of its
// lifecycle — Open, the first Next, mid-stream — via the planted
// failpoints, and must then reopen to exactly the fault-free result
// (the Open() full-reset contract extended to failed runs).

class ReopenAfterErrorTest : public ::testing::Test {
 protected:
  void SetUp() override { Failpoint::DisarmAll(); }
  void TearDown() override { Failpoint::DisarmAll(); }

  // Compiles `plan`, computes the fault-free reference, then for each
  // (site, spec) drill: arm, drain (error or clean finish are both
  // legal — a mid-stream spec may outlast a short stream), disarm, and
  // reopen the same tree expecting the exact reference multiset.
  void Drill(const PlanPtr& plan, const ParallelOptions* options = nullptr) {
    auto compiled = options == nullptr
                        ? Compile(plan, ExecMode::kOngoing, 0, nullptr)
                        : Compile(plan, ExecMode::kOngoing, 0, *options,
                                  nullptr);
    ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
    PhysicalOperator& root = **compiled;
    auto reference = DrainToRelation(root);
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();
    const auto want = plan_fuzz::Fingerprint(*reference);

    const struct {
      const char* site;
      const char* spec;
    } drills[] = {
        {"exec.open", "always"},        // error on Open
        {"exec.open", "after:1"},       // error on a later Open (inner op)
        {"exec.next", "always"},        // error on the first Next
        {"exec.next", "after:2"},       // error mid-stream
        {"exec.materialize", "after:1"},  // error inside a blocking build
    };
    for (const auto& drill : drills) {
      SCOPED_TRACE(std::string(drill.site) + "=" + drill.spec);
      {
        ScopedFailpoint guard(drill.site, drill.spec);
        auto faulty = DrainToRelation(root);
        if (!faulty.ok()) {
          EXPECT_NE(faulty.status().message().find("failpoint"),
                    std::string::npos)
              << faulty.status().ToString();
        }
      }
      auto recovered = DrainToRelation(root);
      ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
      EXPECT_EQ(plan_fuzz::Fingerprint(*recovered), want);
    }
  }

  OngoingRelation MakeRel(uint64_t seed, const char* prefix, size_t n) {
    Rng rng(seed);
    return plan_fuzz::MakeBase(rng, prefix, n);
  }
};

TEST_F(ReopenAfterErrorTest, ScanAndFilter) {
  OngoingRelation r = MakeRel(1, "F_", 20);
  Drill(Filter(Scan(&r, "R"), Lt(Col("F_ID"), Lit(int64_t{15}))));
}

TEST_F(ReopenAfterErrorTest, IndexBackedFilter) {
  OngoingRelation r = MakeRel(2, "I_", 30);
  Drill(Filter(Scan(&r, "R"),
               OverlapsExpr(Col("I_VT"), Lit(OngoingInterval::Fixed(10, 60))),
               AccessPath::kIndex));
}

TEST_F(ReopenAfterErrorTest, Project) {
  OngoingRelation r = MakeRel(3, "P_", 20);
  Drill(ProjectPlan(Filter(Scan(&r, "R"), Lt(Col("P_ID"), Lit(int64_t{18}))),
                    {"P_ID", "P_VT"}));
}

TEST_F(ReopenAfterErrorTest, HashJoin) {
  OngoingRelation l = MakeRel(4, "L_", 15), r = MakeRel(5, "R_", 15);
  Drill(Join(Scan(&l, "L"), Scan(&r, "R"), Eq(Col("L_K"), Col("R_K")), "L",
             "R", JoinAlgorithm::kHash));
}

TEST_F(ReopenAfterErrorTest, NestedLoopJoin) {
  OngoingRelation l = MakeRel(6, "L_", 12), r = MakeRel(7, "R_", 12);
  Drill(Join(Scan(&l, "L"), Scan(&r, "R"),
             OverlapsExpr(Col("L_VT"), Col("R_VT")), "L", "R",
             JoinAlgorithm::kNestedLoop));
}

TEST_F(ReopenAfterErrorTest, SortMergeJoin) {
  OngoingRelation l = MakeRel(8, "L_", 15), r = MakeRel(9, "R_", 15);
  Drill(Join(Scan(&l, "L"), Scan(&r, "R"), Eq(Col("L_K"), Col("R_K")), "L",
             "R", JoinAlgorithm::kSortMerge));
}

TEST_F(ReopenAfterErrorTest, IndexNestedLoopJoin) {
  OngoingRelation l = MakeRel(10, "L_", 12), r = MakeRel(11, "R_", 12);
  Drill(Join(Scan(&l, "L"), Scan(&r, "R"),
             OverlapsExpr(Col("L_VT"), Col("R_VT")), "L", "R",
             JoinAlgorithm::kIndexNL));
}

TEST_F(ReopenAfterErrorTest, ParallelGatherAndRepartition) {
  // The morsel-driven lowering: MorselScanOp leaves, RepartitionOp
  // around the partitioned join, GatherOp at the root — with producer
  // tasks that must be joined on every faulty drain.
  OngoingRelation l = MakeRel(12, "L_", 20), r = MakeRel(13, "R_", 20);
  PlanPtr plan = Join(Filter(Scan(&l, "L"), Lt(Col("L_ID"), Lit(int64_t{18}))),
                      Scan(&r, "R"), Eq(Col("L_K"), Col("R_K")), "L", "R",
                      JoinAlgorithm::kHash);
  for (size_t workers : {2u, 4u}) {
    SCOPED_TRACE(workers);
    ParallelOptions options = plan_fuzz::ForcedParallel(workers, 3);
    Drill(plan, &options);
    // The gather handoff seam as well: producers fail asynchronously.
    auto compiled = Compile(plan, ExecMode::kOngoing, 0, options, nullptr);
    ASSERT_TRUE(compiled.ok());
    auto reference = DrainToRelation(**compiled);
    ASSERT_TRUE(reference.ok());
    for (const char* site : {"gather.handoff", "repartition.route"}) {
      SCOPED_TRACE(site);
      {
        ScopedFailpoint guard(site, "after:1");
        auto faulty = DrainToRelation(**compiled);
        if (!faulty.ok()) {
          EXPECT_NE(faulty.status().message().find("failpoint"),
                    std::string::npos);
        }
      }
      auto recovered = DrainToRelation(**compiled);
      ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
      EXPECT_EQ(plan_fuzz::Fingerprint(*recovered),
                plan_fuzz::Fingerprint(*reference));
    }
  }
}

TEST(RelationPrintingTest, TruncatesLongRelations) {
  OngoingRelation r(Schema({{"K", ValueType::kInt64}}));
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(r.Insert({Value::Int64(i)}).ok());
  }
  std::string rendered = r.ToString(/*max_rows=*/10);
  EXPECT_NE(rendered.find("(50 more rows)"), std::string::npos);
}

}  // namespace
}  // namespace ongoingdb
