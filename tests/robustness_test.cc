// Cross-cutting robustness tests: plan rendering, expression rewriting,
// boundary values near the time-domain limits, and storage fuzzing.
#include <gtest/gtest.h>

#include "core/operations.h"
#include "query/executor.h"
#include "query/optimizer.h"
#include "storage/heap_file.h"
#include "util/rng.h"

namespace ongoingdb {
namespace {

TEST(PlanRenderingTest, TreeStructureVisible) {
  OngoingRelation r(Schema({{"K", ValueType::kInt64},
                            {"VT", ValueType::kOngoingInterval}}));
  PlanPtr plan = ProjectPlan(
      Filter(Join(Scan(&r, "R"), Scan(&r, "S"), Eq(Col("L.K"), Col("R.K")),
                  "L", "R", JoinAlgorithm::kSortMerge),
             Lt(Col("L.K"), Lit(int64_t{5}))),
      {"L.K"});
  std::string rendered = plan->ToString();
  EXPECT_NE(rendered.find("Project [L.K]"), std::string::npos);
  EXPECT_NE(rendered.find("Filter (L.K < 5)"), std::string::npos);
  EXPECT_NE(rendered.find("Join[sort-merge]"), std::string::npos);
  EXPECT_NE(rendered.find("Scan(R, 0 tuples)"), std::string::npos);
}

TEST(ExprRewriteTest, RenamesAllColumnKinds) {
  ExprPtr pred =
      And(Or(Eq(Col("L.A"), Col("R.B")), Not(Lt(Col("L.C"), Lit(int64_t{1})))),
          OverlapsExpr(IntersectExpr(Col("L.VT"), Col("R.VT")),
                       Lit(OngoingInterval::Fixed(0, 1))));
  ExprPtr rewritten = pred->RewriteColumns([](const std::string& name) {
    return name.substr(name.find('.') + 1);
  });
  std::vector<std::string> columns;
  rewritten->CollectColumns(&columns);
  EXPECT_EQ(columns, (std::vector<std::string>{"A", "B", "C", "VT", "VT"}));
  // The original is untouched (expressions are immutable).
  columns.clear();
  pred->CollectColumns(&columns);
  EXPECT_EQ(columns[0], "L.A");
}

TEST(BoundaryTest, OperationsAtDomainLimits) {
  // Points anchored at the domain limits stay consistent.
  OngoingTimePoint at_min = OngoingTimePoint::Fixed(kMinInfinity);
  OngoingTimePoint at_max = OngoingTimePoint::Fixed(kMaxInfinity);
  EXPECT_TRUE(Less(at_min, at_max).IsAlwaysTrue());
  EXPECT_TRUE(Less(at_max, at_min).IsAlwaysFalse());
  // now vs the limits.
  EXPECT_TRUE(Less(OngoingTimePoint::Now(), at_max)
                  .Instantiate(kMaxInfinity - 1));
  EXPECT_FALSE(Less(OngoingTimePoint::Now(), at_min).Instantiate(0));
  // Min/max stay in Omega at the limits.
  OngoingTimePoint mixed = Min(OngoingTimePoint::Now(), at_max);
  EXPECT_LE(mixed.a(), mixed.b());
}

TEST(BoundaryTest, LessThanNearUpperLimit) {
  // b + 1 == kMaxInfinity must not produce an invalid interval set.
  OngoingTimePoint t1(0, kMaxInfinity - 1);
  OngoingTimePoint t2(1, kMaxInfinity);
  OngoingBoolean b = Less(t1, t2);
  for (TimePoint rt : {TimePoint{-10}, TimePoint{0}, TimePoint{5},
                       kMaxInfinity - 2}) {
    EXPECT_EQ(b.Instantiate(rt), t1.Instantiate(rt) < t2.Instantiate(rt));
  }
}

TEST(BoundaryTest, IntervalSetMinMaxAccessors) {
  IntervalSet s{{5, 10}, {20, 30}};
  EXPECT_EQ(s.Min(), 5);
  EXPECT_EQ(s.MaxExclusive(), 30);
}

TEST(StorageFuzzTest, HeapFileRandomPageSizes) {
  Rng rng(123);
  Schema schema({{"ID", ValueType::kInt64},
                 {"S", ValueType::kString},
                 {"VT", ValueType::kOngoingInterval}});
  for (int round = 0; round < 5; ++round) {
    size_t page_size = static_cast<size_t>(rng.Uniform(512, 8192));
    HeapFile file(schema, page_size);
    OngoingRelation r(schema);
    const int n = static_cast<int>(rng.Uniform(10, 200));
    for (int i = 0; i < n; ++i) {
      ASSERT_TRUE(
          r.Insert({Value::Int64(i),
                    Value::String(rng.String(
                        static_cast<size_t>(rng.Uniform(0, 100)))),
                    Value::Ongoing(OngoingInterval::SinceUntilNow(
                        rng.Uniform(0, 1000)))})
              .ok());
    }
    ASSERT_TRUE(file.Load(r).ok());
    auto scanned = file.Scan();
    ASSERT_TRUE(scanned.ok());
    ASSERT_EQ(scanned->size(), r.size());
    for (size_t i = 0; i < r.size(); ++i) {
      EXPECT_EQ(scanned->tuple(i), r.tuple(i));
    }
    EXPECT_LE(file.UsedBytes(), file.TotalBytes());
  }
}

TEST(OptimizerRobustnessTest, NestedFiltersAndProjections) {
  OngoingRelation r(Schema({{"K", ValueType::kInt64},
                            {"VT", ValueType::kOngoingInterval}}));
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(r.Insert({Value::Int64(i),
                          Value::Ongoing(
                              OngoingInterval::SinceUntilNow(i * 3))})
                    .ok());
  }
  // Filter over filter over join over scans, with a projection on top.
  PlanPtr plan = ProjectPlan(
      Filter(Filter(Join(Scan(&r, "R"), Scan(&r, "S"),
                         Eq(Col("L.K"), Col("R.K")), "L", "R"),
                    Lt(Col("L.K"), Lit(int64_t{15}))),
             OverlapsExpr(Col("L.VT"), Lit(OngoingInterval::Fixed(10, 40)))),
      {"L.K"});
  auto optimized = Optimize(plan);
  ASSERT_TRUE(optimized.ok());
  auto plain = Execute(plan);
  auto opt = Execute(*optimized);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(opt.ok());
  EXPECT_EQ(plain->size(), opt->size());
  for (TimePoint rt = 0; rt <= 80; rt += 9) {
    EXPECT_TRUE(InstantiatedRelationsEqual(InstantiateRelation(*plain, rt),
                                           InstantiateRelation(*opt, rt)));
  }
}

TEST(OptimizerRobustnessTest, SchemaErrorsPropagate) {
  OngoingRelation r(Schema({{"K", ValueType::kInt64}}));
  // Projection of a missing column fails cleanly at schema derivation.
  PlanPtr plan = ProjectPlan(Scan(&r, "R"), {"Missing"});
  EXPECT_FALSE(OutputSchema(plan).ok());
  EXPECT_FALSE(Execute(plan).ok());
}

TEST(RelationPrintingTest, TruncatesLongRelations) {
  OngoingRelation r(Schema({{"K", ValueType::kInt64}}));
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(r.Insert({Value::Int64(i)}).ok());
  }
  std::string rendered = r.ToString(/*max_rows=*/10);
  EXPECT_NE(rendered.find("(50 more rows)"), std::string::npos);
}

}  // namespace
}  // namespace ongoingdb
