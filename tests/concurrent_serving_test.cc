// Randomized concurrent serving equivalence: N reader sessions × M
// writer sessions hammer one serving catalog (server/catalog.h) at once;
// every reader pins transaction-time snapshots and runs SELECTs while
// writers commit inserts, temporal deletes, and temporal updates.
//
// The oracle: every write is logged with the commit sequence the catalog
// assigned it. After the threads join, each recorded read (pinned
// sequence S, result fingerprint) is checked against a serial replay —
// the committed prefix with sequence <= S applied in sequence order to a
// plain relation with the PLAIN Torp modifications, then the same SELECT
// executed over that reconstruction. Equality means snapshot isolation
// held: the reader saw exactly the serial state at its pinned sequence,
// never a half-applied commit, never a torn mix of sequences — and the
// commit-stamped modifications are Current()-equivalent to the plain
// ones end to end.
//
// Runs under TSan in CI (with the fault-injection and thread-pool
// suites): the no-reader-side-lock read path is exactly the kind of code
// a race detector must vet, not just reason about.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "relation/modifications.h"
#include "server/catalog.h"
#include "server/session.h"
#include "sql/parser.h"
#include "sql/statement.h"
#include "testing/plan_fuzz.h"
#include "util/rng.h"

namespace ongoingdb {
namespace server {
namespace {

using plan_fuzz::Fingerprint;
using plan_fuzz::FuzzSeeds;
using plan_fuzz::MakeBase;
using plan_fuzz::StringPool;

constexpr size_t kReaders = 3;
constexpr size_t kWriters = 2;
constexpr int kWritesPerWriter = 18;
constexpr int kReadsPerReader = 14;
constexpr size_t kVtIndex = 3;  // MakeBase: {ID, K, S, VT}

// One committed write, logged with the sequence the catalog assigned it.
// Enough to replay the same mutation with the plain Torp ops.
struct LoggedWrite {
  enum Kind { kInsert, kDelete, kUpdate };
  uint64_t seq = 0;
  Kind kind = kInsert;
  std::vector<Value> values;  // kInsert
  int64_t key = 0;            // kDelete/kUpdate: match T_K == key
  TimePoint tc = 0;           // kDelete/kUpdate
  std::string replacement;    // kUpdate: new T_S value
};

// One recorded read: the pinned sequence and what the reader saw.
struct LoggedRead {
  uint64_t seq = 0;
  size_t statement = 0;  // index into kStatements
  std::multiset<std::string> fingerprint;
};

const char* kStatements[] = {
    "SELECT * FROM T",
    "SELECT * FROM T WHERE T_K < 2",
    "SELECT T_ID, T_S FROM T WHERE T_VT OVERLAPS PERIOD ['10/20', NOW)",
};

ModificationFilter KeyFilter(int64_t key) {
  return [key](const Tuple& t) { return t.value(1).AsInt64() == key; };
}

std::function<std::vector<Value>(const Tuple&)> ReplaceS(
    std::string replacement) {
  return [replacement = std::move(replacement)](const Tuple& t) {
    std::vector<Value> values = t.values();
    values[2] = Value::String(replacement);
    return values;
  };
}

// Serial reference: the base relation with every logged write of
// sequence <= `seq` applied in sequence order, then `statement` run over
// it through the embedded (single-threaded) SQL path.
std::multiset<std::string> ReplayAt(const OngoingRelation& base,
                                    const std::vector<LoggedWrite>& log,
                                    uint64_t seq, size_t statement) {
  OngoingRelation state = base;
  for (const LoggedWrite& w : log) {
    if (w.seq > seq) break;  // log is sorted by seq
    switch (w.kind) {
      case LoggedWrite::kInsert:
        EXPECT_TRUE(state.Insert(w.values).ok());
        break;
      case LoggedWrite::kDelete:
        EXPECT_TRUE(
            TemporalDelete(&state, kVtIndex, w.tc, KeyFilter(w.key)).ok());
        break;
      case LoggedWrite::kUpdate:
        EXPECT_TRUE(TemporalUpdate(&state, kVtIndex, w.tc, KeyFilter(w.key),
                                   ReplaceS(w.replacement))
                        .ok());
        break;
    }
  }
  sql::Catalog reference;
  reference.Register("T", std::move(state));
  auto result = sql::RunQuery(kStatements[statement], reference);
  EXPECT_TRUE(result.ok()) << result.status();
  if (!result.ok()) return {};
  return Fingerprint(*result);
}

class ConcurrentServingTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ConcurrentServingTest, ReadersSeeExactSerialStatesAtTheirSnapshots) {
  const uint64_t seed = GetParam();
  ONGOINGDB_FUZZ_SEED_TRACE(seed);

  Rng base_rng(seed);
  const OngoingRelation base = MakeBase(base_rng, "T_", 12);
  const uint64_t base_seq = 1;  // RegisterTable publishes one commit

  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterTable("T", base).ok());
  SessionManager manager(&catalog);

  std::mutex log_mu;
  std::vector<LoggedWrite> write_log;
  std::vector<LoggedRead> read_log;

  std::vector<std::thread> threads;
  threads.reserve(kWriters + kReaders);

  for (size_t w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      Rng rng(seed * 1000 + w);
      for (int i = 0; i < kWritesPerWriter; ++i) {
        LoggedWrite entry;
        const double roll = rng.UniformReal();
        Result<uint64_t> committed = [&]() -> Result<uint64_t> {
          if (roll < 0.5) {
            entry.kind = LoggedWrite::kInsert;
            entry.values = {
                Value::Int64(static_cast<int64_t>(1000 + w * 100 +
                                                  static_cast<size_t>(i))),
                Value::Int64(rng.Uniform(0, 4)),
                Value::String(StringPool()[static_cast<size_t>(
                    rng.Uniform(0, 3))]),
                Value::Ongoing(
                    OngoingInterval::SinceUntilNow(rng.Uniform(0, 100)))};
            return catalog.Insert("T", entry.values);
          }
          if (roll < 0.75) {
            entry.kind = LoggedWrite::kDelete;
            entry.key = rng.Uniform(0, 4);
            entry.tc = rng.Uniform(0, 100);
            return catalog.TemporalDeleteWhere("T", entry.tc,
                                               KeyFilter(entry.key));
          }
          entry.kind = LoggedWrite::kUpdate;
          entry.key = rng.Uniform(0, 4);
          entry.tc = rng.Uniform(0, 100);
          entry.replacement =
              StringPool()[static_cast<size_t>(rng.Uniform(0, 3))];
          return catalog.TemporalUpdateWhere("T", entry.tc,
                                             KeyFilter(entry.key),
                                             ReplaceS(entry.replacement));
        }();
        ASSERT_TRUE(committed.ok()) << committed.status();
        entry.seq = *committed;
        std::lock_guard<std::mutex> lock(log_mu);
        write_log.push_back(std::move(entry));
      }
    });
  }

  for (size_t r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      Rng rng(seed * 2000 + r);
      SessionOptions options;
      options.workers = 1 + r % 2;  // mix serial and parallel drains
      auto session = manager.CreateSession(options);
      for (int i = 0; i < kReadsPerReader; ++i) {
        const size_t statement =
            static_cast<size_t>(rng.Uniform(0, 2));
        // Every few reads, hold one pinned snapshot across two SELECTs:
        // both must see the identical state (repeatable read) while the
        // writers race on.
        const bool hold_pin = rng.Bernoulli(0.3);
        if (hold_pin) {
          auto pinned = session->PinSnapshot();
          ASSERT_TRUE(pinned.ok()) << pinned.status();
        }
        auto first = session->Execute(kStatements[statement]);
        ASSERT_TRUE(first.ok()) << first.status();
        ASSERT_TRUE(first->result.relation.has_value());
        LoggedRead entry;
        entry.seq = first->snapshot_seq;
        entry.statement = statement;
        entry.fingerprint = Fingerprint(*first->result.relation);
        EXPECT_GE(entry.seq, base_seq);
        if (hold_pin) {
          auto second = session->Execute(kStatements[statement]);
          ASSERT_TRUE(second.ok()) << second.status();
          EXPECT_EQ(second->snapshot_seq, first->snapshot_seq);
          EXPECT_EQ(Fingerprint(*second->result.relation),
                    entry.fingerprint);
          session->Unpin();
        }
        std::lock_guard<std::mutex> lock(log_mu);
        read_log.push_back(std::move(entry));
      }
    });
  }

  for (std::thread& t : threads) t.join();

  // Commit sequences are unique and gapless: every commit published
  // exactly once, failed commits (there are none here) consume nothing.
  ASSERT_EQ(write_log.size(), kWriters * kWritesPerWriter);
  std::sort(write_log.begin(), write_log.end(),
            [](const LoggedWrite& a, const LoggedWrite& b) {
              return a.seq < b.seq;
            });
  for (size_t i = 0; i < write_log.size(); ++i) {
    EXPECT_EQ(write_log[i].seq, base_seq + 1 + i);
  }
  EXPECT_EQ(catalog.commit_seq(), base_seq + write_log.size());

  // Every read equals the serial replay at its pinned sequence.
  ASSERT_EQ(read_log.size(), kReaders * kReadsPerReader);
  for (const LoggedRead& read : read_log) {
    SCOPED_TRACE("snapshot seq " + std::to_string(read.seq) +
                 ", statement " + std::to_string(read.statement));
    EXPECT_EQ(read.fingerprint,
              ReplayAt(base, write_log, read.seq, read.statement));
  }

  // And the final published state equals the full serial replay.
  auto final_state = catalog.PinSnapshot().Get("T");
  ASSERT_TRUE(final_state.ok());
  EXPECT_EQ(Fingerprint(**final_state),
            ReplayAt(base, write_log, catalog.commit_seq(), 0));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConcurrentServingTest,
                         ::testing::ValuesIn(FuzzSeeds(4)));

}  // namespace
}  // namespace server
}  // namespace ongoingdb
