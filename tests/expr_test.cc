// Tests of the expression language: ongoing vs fixed evaluation modes,
// type errors, and the Sec. VIII conjunction split.
#include "expr/expr.h"

#include <gtest/gtest.h>

namespace ongoingdb {
namespace {

Schema TestSchema() {
  return Schema({{"ID", ValueType::kInt64},
                 {"Name", ValueType::kString},
                 {"Start", ValueType::kTimePoint},
                 {"VT", ValueType::kOngoingInterval},
                 {"End", ValueType::kOngoingTimePoint}});
}

Tuple TestTuple() {
  return Tuple({Value::Int64(7), Value::String("spam"),
                Value::Time(MD(3, 1)),
                Value::Ongoing(OngoingInterval::SinceUntilNow(MD(1, 25))),
                Value::Ongoing(OngoingTimePoint::Now())});
}

TEST(ExprTest, ColumnAndLiteralScalars) {
  Schema schema = TestSchema();
  Tuple t = TestTuple();
  auto v = Col("ID")->EvalScalar(schema, t);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsInt64(), 7);
  auto lit = Lit(Value::Bool(true))->EvalScalar(schema, t);
  ASSERT_TRUE(lit.ok());
  EXPECT_TRUE(lit->AsBool());
  EXPECT_FALSE(Col("Missing")->EvalScalar(schema, t).ok());
}

TEST(ExprTest, FixedComparisonYieldsConstantBoolean) {
  Schema schema = TestSchema();
  Tuple t = TestTuple();
  auto b = Eq(Col("Name"), Lit("spam"))->EvalPredicate(schema, t);
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(b->IsAlwaysTrue());
  auto b2 = Lt(Col("ID"), Lit(int64_t{3}))->EvalPredicate(schema, t);
  ASSERT_TRUE(b2.ok());
  EXPECT_TRUE(b2->IsAlwaysFalse());
}

TEST(ExprTest, OngoingComparisonYieldsTimeDependentBoolean) {
  Schema schema = TestSchema();
  Tuple t = TestTuple();
  // Start < End where End = now: true from 03/02 on.
  auto b = Lt(Col("Start"), Col("End"))->EvalPredicate(schema, t);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->st(), (IntervalSet{{MD(3, 1) + 1, kMaxInfinity}}));
}

TEST(ExprTest, AllenPredicateOnMixedIntervalOperands) {
  Schema schema = TestSchema();
  Tuple t = TestTuple();
  auto b = OverlapsExpr(Col("VT"),
                        Lit(OngoingInterval::Fixed(MD(1, 20), MD(8, 18))))
               ->EvalPredicate(schema, t);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->st(), (IntervalSet{{MD(1, 26), kMaxInfinity}}));
}

TEST(ExprTest, TypeErrors) {
  Schema schema = TestSchema();
  Tuple t = TestTuple();
  // Comparing across families fails.
  EXPECT_FALSE(Lt(Col("ID"), Col("Name"))->EvalPredicate(schema, t).ok());
  // Allen predicate on non-intervals fails.
  EXPECT_FALSE(
      OverlapsExpr(Col("ID"), Col("VT"))->EvalPredicate(schema, t).ok());
  // Interval ordering is undefined.
  EXPECT_FALSE(Lt(Col("VT"), Col("VT"))->EvalPredicate(schema, t).ok());
  // Scalar used as predicate fails.
  EXPECT_FALSE(Col("ID")->EvalPredicate(schema, t).ok());
}

TEST(ExprTest, FixedEvaluationOnInstantiatedTuple) {
  Schema schema = TestSchema().Instantiated();
  Tuple t(TestTuple().InstantiateValues(MD(8, 15)));
  auto keep = OverlapsExpr(Col("VT"),
                           Lit(Value::Interval({MD(1, 20), MD(8, 18)})))
                  ->EvalPredicateFixed(schema, t);
  ASSERT_TRUE(keep.ok());
  EXPECT_TRUE(*keep);
  auto lt = Lt(Col("Start"), Col("End"))->EvalPredicateFixed(schema, t);
  ASSERT_TRUE(lt.ok());
  EXPECT_TRUE(*lt);  // 03/01 < 08/15
}

TEST(ExprTest, LogicalShortCircuit) {
  Schema schema = TestSchema();
  Tuple t = TestTuple();
  // (false and <type error>) short-circuits to false.
  auto b = And(Eq(Col("Name"), Lit("other")), Lt(Col("ID"), Col("Name")))
               ->EvalPredicate(schema, t);
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(b->IsAlwaysFalse());
  // (true or <type error>) short-circuits to true.
  auto b2 = Or(Eq(Col("Name"), Lit("spam")), Lt(Col("ID"), Col("Name")))
                ->EvalPredicate(schema, t);
  ASSERT_TRUE(b2.ok());
  EXPECT_TRUE(b2->IsAlwaysTrue());
}

TEST(ExprTest, NotCombinators) {
  Schema schema = TestSchema();
  Tuple t = TestTuple();
  auto b = Not(Eq(Col("Name"), Lit("spam")))->EvalPredicate(schema, t);
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(b->IsAlwaysFalse());
}

TEST(ExprTest, IntersectScalar) {
  Schema schema = TestSchema();
  Tuple t = TestTuple();
  auto v = IntersectExpr(Col("VT"),
                         Lit(OngoingInterval::Fixed(MD(1, 20), MD(8, 18))))
               ->EvalScalar(schema, t);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsOngoingInterval().ToString(), "[01/25, +08/18)");
}

TEST(ExprTest, IsFixedOnlyClassification) {
  Schema schema = TestSchema();
  EXPECT_TRUE(Eq(Col("Name"), Lit("spam"))->IsFixedOnly(schema));
  EXPECT_TRUE(Lt(Col("ID"), Lit(int64_t{3}))->IsFixedOnly(schema));
  EXPECT_FALSE(Col("VT")->IsFixedOnly(schema));
  EXPECT_FALSE(
      OverlapsExpr(Col("VT"), Lit(OngoingInterval::Fixed(0, 1)))
          ->IsFixedOnly(schema));
  // Fixed literal intervals are fixed-only.
  EXPECT_TRUE(Lit(Value::Interval({0, 1}))->IsFixedOnly(schema));
}

TEST(ExprTest, SplitSeparatesFixedAndOngoingConjuncts) {
  // Sec. VIII: sigma with a conjunctive predicate splits into a fixed
  // WHERE part and an ongoing RT-restriction part.
  Schema schema = TestSchema();
  ExprPtr pred = And(And(Eq(Col("Name"), Lit("spam")),
                         OverlapsExpr(Col("VT"),
                                      Lit(OngoingInterval::Fixed(0, 10)))),
                     Lt(Col("ID"), Lit(int64_t{100})));
  SplitPredicate split = Split(pred, schema);
  ASSERT_NE(split.fixed_part, nullptr);
  ASSERT_NE(split.ongoing_part, nullptr);
  EXPECT_TRUE(split.fixed_part->IsFixedOnly(schema));
  EXPECT_FALSE(split.ongoing_part->IsFixedOnly(schema));
  // Two fixed conjuncts went left, one ongoing went right.
  std::vector<ExprPtr> fixed_conjuncts;
  CollectTopLevelConjuncts(split.fixed_part, &fixed_conjuncts);
  EXPECT_EQ(fixed_conjuncts.size(), 2u);
}

TEST(ExprTest, SplitAllFixedOrAllOngoing) {
  Schema schema = TestSchema();
  SplitPredicate all_fixed = Split(Eq(Col("Name"), Lit("x")), schema);
  EXPECT_NE(all_fixed.fixed_part, nullptr);
  EXPECT_EQ(all_fixed.ongoing_part, nullptr);
  SplitPredicate all_ongoing =
      Split(OverlapsExpr(Col("VT"), Lit(OngoingInterval::Fixed(0, 1))),
            schema);
  EXPECT_EQ(all_ongoing.fixed_part, nullptr);
  EXPECT_NE(all_ongoing.ongoing_part, nullptr);
}

TEST(ExprTest, CollectColumns) {
  ExprPtr pred = And(Eq(Col("A"), Col("B")),
                     Not(OverlapsExpr(Col("C"), Lit(OngoingInterval::Fixed(
                                                   0, 1)))));
  std::vector<std::string> columns;
  pred->CollectColumns(&columns);
  EXPECT_EQ(columns, (std::vector<std::string>{"A", "B", "C"}));
}

TEST(ExprTest, ToStringRendering) {
  ExprPtr pred = And(Eq(Col("C"), Lit("Spam filter")),
                     BeforeExpr(Col("B.VT"), Col("P.VT")));
  EXPECT_EQ(pred->ToString(),
            "((C = Spam filter) and (B.VT before P.VT))");
}

}  // namespace
}  // namespace ongoingdb
