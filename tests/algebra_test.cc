// Tests of the relational algebra on ongoing relations (Theorem 2):
// per-operator semantics plus the paper's Example 3.
#include "relation/algebra.h"

#include <gtest/gtest.h>

#include "core/operations.h"

namespace ongoingdb {
namespace {

Schema XSchema() {
  return Schema({{"BID", ValueType::kInt64},
                 {"C", ValueType::kString},
                 {"VT", ValueType::kOngoingInterval}});
}

// Example 3 of the paper: selection with VT overlaps [01/20, 08/18) on a
// tuple with RT = {(-inf, 08/16)} yields RT = {[01/26, 08/16)}.
TEST(AlgebraTest, PaperExample3Selection) {
  OngoingRelation x(XSchema());
  ASSERT_TRUE(
      x.InsertWithRt(
           {Value::Int64(500), Value::String("Spam filter"),
            Value::Ongoing(OngoingInterval::SinceUntilNow(MD(1, 25)))},
           IntervalSet{{kMinInfinity, MD(8, 16)}})
          .ok());
  OngoingRelation q = Select(x, [](const Tuple& t) {
    return Overlaps(t.value(2).AsOngoingInterval(),
                    OngoingInterval::Fixed(MD(1, 20), MD(8, 18)));
  });
  ASSERT_EQ(q.size(), 1u);
  EXPECT_EQ(q.tuple(0).rt(), (IntervalSet{{MD(1, 26), MD(8, 16)}}));
  // Attribute values are unchanged (ongoing time points preserved).
  EXPECT_EQ(q.tuple(0).value(2).AsOngoingInterval().ToString(),
            "[01/25, now)");
}

TEST(AlgebraTest, SelectionDropsTuplesWithEmptyRt) {
  OngoingRelation x(XSchema());
  ASSERT_TRUE(x.Insert({Value::Int64(1), Value::String("a"),
                        Value::Ongoing(OngoingInterval::Fixed(0, 10))})
                  .ok());
  OngoingRelation q =
      Select(x, [](const Tuple&) { return OngoingBoolean::False(); });
  EXPECT_EQ(q.size(), 0u);
}

TEST(AlgebraTest, SelectionOnFixedPredicateKeepsRtUnchanged) {
  // Predicates on fixed attributes retain their standard behavior
  // (Sec. VII-B): true keeps RT, false drops the tuple.
  OngoingRelation x(XSchema());
  auto vt = Value::Ongoing(OngoingInterval::SinceUntilNow(0));
  ASSERT_TRUE(x.InsertWithRt({Value::Int64(1), Value::String("spam"), vt},
                             IntervalSet{{3, 9}})
                  .ok());
  ASSERT_TRUE(x.InsertWithRt({Value::Int64(2), Value::String("ui"), vt},
                             IntervalSet{{3, 9}})
                  .ok());
  OngoingRelation q = Select(x, [](const Tuple& t) {
    return OngoingBoolean::FromBool(t.value(1).AsString() == "spam");
  });
  ASSERT_EQ(q.size(), 1u);
  EXPECT_EQ(q.tuple(0).value(0).AsInt64(), 1);
  EXPECT_EQ(q.tuple(0).rt(), (IntervalSet{{3, 9}}));
}

TEST(AlgebraTest, ProjectionKeepsReferenceTime) {
  OngoingRelation x(XSchema());
  ASSERT_TRUE(
      x.InsertWithRt({Value::Int64(500), Value::String("Spam filter"),
                      Value::Ongoing(OngoingInterval::SinceUntilNow(0))},
                     IntervalSet{{5, 15}})
          .ok());
  auto q = Project(x, std::vector<std::string>{"BID"});
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->size(), 1u);
  EXPECT_EQ(q->schema().num_attributes(), 1u);
  EXPECT_EQ(q->tuple(0).rt(), (IntervalSet{{5, 15}}));
}

TEST(AlgebraTest, CrossProductIntersectsReferenceTimes) {
  OngoingRelation r(Schema({{"A", ValueType::kInt64}}));
  OngoingRelation s(Schema({{"B", ValueType::kInt64}}));
  ASSERT_TRUE(r.InsertWithRt({Value::Int64(1)}, IntervalSet{{0, 10}}).ok());
  ASSERT_TRUE(s.InsertWithRt({Value::Int64(2)}, IntervalSet{{5, 20}}).ok());
  ASSERT_TRUE(s.InsertWithRt({Value::Int64(3)}, IntervalSet{{15, 20}}).ok());
  OngoingRelation product = CrossProduct(r, s);
  // The (1, 3) pair has disjoint reference times and is dropped.
  ASSERT_EQ(product.size(), 1u);
  EXPECT_EQ(product.tuple(0).rt(), (IntervalSet{{5, 10}}));
  EXPECT_EQ(product.tuple(0).value(1).AsInt64(), 2);
}

TEST(AlgebraTest, ThetaJoinRestrictsByPredicate) {
  OngoingRelation r(XSchema());
  OngoingRelation s(XSchema());
  ASSERT_TRUE(
      r.Insert({Value::Int64(500), Value::String("Spam filter"),
                Value::Ongoing(OngoingInterval::SinceUntilNow(MD(1, 25)))})
          .ok());
  ASSERT_TRUE(
      s.Insert({Value::Int64(201), Value::String("Spam filter"),
                Value::Ongoing(OngoingInterval::Fixed(MD(8, 15), MD(8, 24)))})
          .ok());
  OngoingRelation joined =
      ThetaJoin(r, s,
                [](const Tuple& a, const Tuple& b) {
                  OngoingBoolean same_component = OngoingBoolean::FromBool(
                      a.value(1).AsString() == b.value(1).AsString());
                  return same_component.And(
                      Before(a.value(2).AsOngoingInterval(),
                             b.value(2).AsOngoingInterval()));
                },
                "B", "P");
  // Sec. II: RT = {[01/26, 08/16)}.
  ASSERT_EQ(joined.size(), 1u);
  EXPECT_EQ(joined.tuple(0).rt(), (IntervalSet{{MD(1, 26), MD(8, 16)}}));
}

TEST(AlgebraTest, UnionMergesStructurallyEqualTuples) {
  OngoingRelation r(Schema({{"A", ValueType::kInt64}}));
  OngoingRelation s(Schema({{"A", ValueType::kInt64}}));
  ASSERT_TRUE(r.InsertWithRt({Value::Int64(1)}, IntervalSet{{0, 10}}).ok());
  ASSERT_TRUE(s.InsertWithRt({Value::Int64(1)}, IntervalSet{{5, 20}}).ok());
  ASSERT_TRUE(s.InsertWithRt({Value::Int64(2)}, IntervalSet{{0, 5}}).ok());
  auto u = Union(r, s);
  ASSERT_TRUE(u.ok());
  ASSERT_EQ(u->size(), 2u);
  // Tuple 1 got the merged reference time.
  EXPECT_EQ(u->tuple(0).rt(), (IntervalSet{{0, 20}}));
}

TEST(AlgebraTest, UnionRejectsIncompatibleSchemas) {
  OngoingRelation r(Schema({{"A", ValueType::kInt64}}));
  OngoingRelation s(Schema({{"A", ValueType::kString}}));
  EXPECT_FALSE(Union(r, s).ok());
  EXPECT_FALSE(Difference(r, s).ok());
}

TEST(AlgebraTest, CoalesceRtMergesValueEqualTuples) {
  OngoingRelation r(Schema({{"A", ValueType::kInt64}}));
  ASSERT_TRUE(r.InsertWithRt({Value::Int64(1)}, IntervalSet{{0, 10}}).ok());
  ASSERT_TRUE(r.InsertWithRt({Value::Int64(1)}, IntervalSet{{10, 20}}).ok());
  ASSERT_TRUE(r.InsertWithRt({Value::Int64(2)}, IntervalSet{{0, 5}}).ok());
  OngoingRelation coalesced = CoalesceRt(r);
  ASSERT_EQ(coalesced.size(), 2u);
  EXPECT_EQ(coalesced.tuple(0).rt(), (IntervalSet{{0, 20}}));
  // Instantiations unchanged at every reference time.
  for (TimePoint rt = -5; rt <= 25; ++rt) {
    EXPECT_TRUE(InstantiatedRelationsEqual(InstantiateRelation(r, rt),
                                           InstantiateRelation(coalesced, rt)))
        << rt;
  }
}

TEST(AlgebraTest, DifferenceSubtractsMatchingReferenceTimes) {
  // r and s contain the same fixed tuple, but s only belongs to the
  // instantiated relations during [5, 15): the difference keeps the
  // remaining reference times.
  OngoingRelation r(Schema({{"A", ValueType::kInt64}}));
  OngoingRelation s(Schema({{"A", ValueType::kInt64}}));
  ASSERT_TRUE(r.InsertWithRt({Value::Int64(1)}, IntervalSet{{0, 20}}).ok());
  ASSERT_TRUE(s.InsertWithRt({Value::Int64(1)}, IntervalSet{{5, 15}}).ok());
  auto d = Difference(r, s);
  ASSERT_TRUE(d.ok());
  ASSERT_EQ(d->size(), 1u);
  EXPECT_EQ(d->tuple(0).rt(), (IntervalSet{{0, 5}, {15, 20}}));
}

TEST(AlgebraTest, DifferenceWithOngoingAttributesUsesInstantiatedEquality) {
  // r holds now, s holds fixed 10: they instantiate equal only at rt=10,
  // so exactly that reference time is subtracted.
  OngoingRelation r(Schema({{"T", ValueType::kOngoingTimePoint}}));
  OngoingRelation s(Schema({{"T", ValueType::kOngoingTimePoint}}));
  ASSERT_TRUE(
      r.Insert({Value::Ongoing(OngoingTimePoint::Now())}).ok());
  ASSERT_TRUE(
      s.Insert({Value::Ongoing(OngoingTimePoint::Fixed(10))}).ok());
  auto d = Difference(r, s);
  ASSERT_TRUE(d.ok());
  ASSERT_EQ(d->size(), 1u);
  EXPECT_FALSE(d->tuple(0).rt().Contains(10));
  EXPECT_TRUE(d->tuple(0).rt().Contains(9));
  EXPECT_TRUE(d->tuple(0).rt().Contains(11));
}

TEST(AlgebraTest, DifferenceRemovesFullyShadowedTuples) {
  OngoingRelation r(Schema({{"A", ValueType::kInt64}}));
  OngoingRelation s(Schema({{"A", ValueType::kInt64}}));
  ASSERT_TRUE(r.InsertWithRt({Value::Int64(1)}, IntervalSet{{5, 15}}).ok());
  ASSERT_TRUE(s.Insert({Value::Int64(1)}).ok());  // trivial RT
  auto d = Difference(r, s);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->size(), 0u);
}

}  // namespace
}  // namespace ongoingdb
