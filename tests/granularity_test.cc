// Tests of the two granularities the paper's implementation supports
// (Sec. VIII): dates (days) and timestamps (microseconds). All ongoing
// operations are granularity-agnostic; the same machinery works at
// microsecond resolution.
#include <gtest/gtest.h>

#include "core/operations.h"

namespace ongoingdb {
namespace {

TEST(GranularityTest, TimestampConstruction) {
  EXPECT_EQ(Timestamp(1970, 1, 1), 0);
  EXPECT_EQ(Timestamp(1970, 1, 1, 0, 0, 1), kMicrosPerSecond);
  EXPECT_EQ(Timestamp(1970, 1, 2), kMicrosPerDay);
  EXPECT_EQ(Timestamp(2019, 8, 15, 14, 30, 0),
            Date(2019, 8, 15) * kMicrosPerDay +
                (14 * 3600 + 30 * 60) * kMicrosPerSecond);
}

TEST(GranularityTest, TimestampFormatting) {
  EXPECT_EQ(FormatTimestamp(Timestamp(2019, 8, 15, 14, 30, 5)),
            "2019/08/15 14:30:05");
  EXPECT_EQ(FormatTimestamp(Timestamp(2019, 8, 15, 0, 0, 0, 250)),
            "2019/08/15 00:00:00.000250");
  EXPECT_EQ(FormatTimestamp(kMinInfinity), "-inf");
  EXPECT_EQ(FormatTimestamp(kMaxInfinity), "+inf");
  // Pre-epoch timestamps format correctly despite negative ticks.
  EXPECT_EQ(FormatTimestamp(Timestamp(1969, 12, 31, 23, 59, 59)),
            "1969/12/31 23:59:59");
}

TEST(GranularityTest, OngoingOperationsAtMicrosecondResolution) {
  // now < a fixed timestamp: true strictly before it, at microsecond
  // precision.
  TimePoint deadline = Timestamp(2019, 8, 15, 12, 0, 0);
  OngoingBoolean b =
      Less(OngoingTimePoint::Now(), OngoingTimePoint::Fixed(deadline));
  EXPECT_TRUE(b.Instantiate(deadline - 1));
  EXPECT_FALSE(b.Instantiate(deadline));
  // The boundary is exact to one microsecond.
  EXPECT_EQ(b.st().MaxExclusive(), deadline);
}

TEST(GranularityTest, MicrosecondIntervalPredicates) {
  // A session open since 09:00:00.5 until now vs a maintenance window.
  OngoingInterval session =
      OngoingInterval::SinceUntilNow(Timestamp(2019, 8, 15, 9, 0, 0, 500000));
  OngoingInterval window = OngoingInterval::Fixed(
      Timestamp(2019, 8, 15, 9, 30, 0), Timestamp(2019, 8, 15, 10, 0, 0));
  OngoingBoolean overlap = Overlaps(session, window);
  // Overlaps once now passes the window start.
  EXPECT_FALSE(overlap.Instantiate(Timestamp(2019, 8, 15, 9, 15, 0)));
  EXPECT_TRUE(overlap.Instantiate(Timestamp(2019, 8, 15, 9, 30, 0) + 1));
  EXPECT_TRUE(overlap.Instantiate(Timestamp(2019, 8, 16, 0, 0, 0)));
}

TEST(GranularityTest, SnapshotEquivalenceAtMicrosecondScale) {
  // The core property holds with huge tick values (no overflow in the
  // decision tree's b + 1 arithmetic).
  TimePoint base = Timestamp(2019, 8, 15, 12, 0, 0);
  OngoingTimePoint t1(base, base + 7 * kMicrosPerDay);
  OngoingTimePoint t2 = OngoingTimePoint::Now();
  OngoingBoolean lt = Less(t1, t2);
  for (TimePoint rt = base - 2 * kMicrosPerDay;
       rt <= base + 10 * kMicrosPerDay; rt += kMicrosPerDay / 3 + 1) {
    EXPECT_EQ(lt.Instantiate(rt), t1.Instantiate(rt) < t2.Instantiate(rt));
  }
}

}  // namespace
}  // namespace ongoingdb
