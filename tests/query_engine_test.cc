// Tests of the query engine: plans, executor modes, join algorithm
// equivalence, optimizer rewrites, and materialized views.
#include <gtest/gtest.h>

#include "query/executor.h"
#include "query/join.h"
#include "query/materialized_view.h"
#include "query/optimizer.h"
#include "util/rng.h"

namespace ongoingdb {
namespace {

// A small randomized workload: relations R(ID, K, VT) and S(ID, K, VT)
// with mixed fixed/ongoing intervals.
OngoingRelation MakeRelation(uint64_t seed, size_t n) {
  Rng rng(seed);
  OngoingRelation r(Schema({{"ID", ValueType::kInt64},
                            {"K", ValueType::kInt64},
                            {"VT", ValueType::kOngoingInterval}}));
  for (size_t i = 0; i < n; ++i) {
    OngoingInterval vt;
    if (rng.Bernoulli(0.3)) {
      vt = OngoingInterval::SinceUntilNow(rng.Uniform(0, 100));
    } else if (rng.Bernoulli(0.2)) {
      vt = OngoingInterval::FromNowUntil(rng.Uniform(0, 100));
    } else {
      TimePoint s = rng.Uniform(0, 100);
      vt = OngoingInterval::Fixed(s, s + rng.Uniform(1, 30));
    }
    EXPECT_TRUE(r.Insert({Value::Int64(static_cast<int64_t>(i)),
                          Value::Int64(rng.Uniform(0, 9)),
                          Value::Ongoing(vt)})
                    .ok());
  }
  return r;
}

TEST(QueryEngineTest, ScanReturnsBaseRelation) {
  OngoingRelation r = MakeRelation(1, 10);
  auto result = Execute(Scan(&r, "R"));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 10u);
}

TEST(QueryEngineTest, FilterSplitMatchesDirectEvaluation) {
  OngoingRelation r = MakeRelation(2, 50);
  ExprPtr pred = And(Lt(Col("K"), Lit(int64_t{5})),
                     OverlapsExpr(Col("VT"),
                                  Lit(OngoingInterval::Fixed(40, 60))));
  auto result = Execute(Filter(Scan(&r, "R"), pred));
  ASSERT_TRUE(result.ok());
  // Reference: evaluate the full predicate per tuple without the split.
  size_t expected = 0;
  for (const Tuple& t : r.tuples()) {
    auto b = pred->EvalPredicate(r.schema(), t);
    ASSERT_TRUE(b.ok());
    if (!t.rt().Intersect(b->st()).IsEmpty()) ++expected;
  }
  EXPECT_EQ(result->size(), expected);
}

TEST(QueryEngineTest, AllJoinAlgorithmsAgree) {
  OngoingRelation r = MakeRelation(3, 40);
  OngoingRelation s = MakeRelation(4, 30);
  ExprPtr pred = And(Eq(Col("L.K"), Col("R.K")),
                     OverlapsExpr(Col("L.VT"), Col("R.VT")));
  auto nl = NestedLoopJoin(r, s, pred, "L", "R");
  auto hash = HashJoin(r, s, pred, "L", "R");
  auto merge = SortMergeJoin(r, s, pred, "L", "R");
  ASSERT_TRUE(nl.ok());
  ASSERT_TRUE(hash.ok());
  ASSERT_TRUE(merge.ok());
  EXPECT_GT(nl->size(), 0u);
  EXPECT_EQ(nl->size(), hash->size());
  EXPECT_EQ(nl->size(), merge->size());
  // Same instantiations at every probe time.
  for (TimePoint rt = -10; rt <= 120; rt += 13) {
    OngoingRelation a = InstantiateRelation(*nl, rt);
    EXPECT_TRUE(InstantiatedRelationsEqual(a, InstantiateRelation(*hash, rt)));
    EXPECT_TRUE(
        InstantiatedRelationsEqual(a, InstantiateRelation(*merge, rt)));
  }
}

TEST(QueryEngineTest, EquiKeyExtraction) {
  OngoingRelation r = MakeRelation(5, 5);
  ExprPtr pred = And(Eq(Col("L.K"), Col("R.K")),
                     OverlapsExpr(Col("L.VT"), Col("R.VT")));
  std::vector<EquiKey> keys;
  ExprPtr residual;
  ASSERT_TRUE(ExtractEquiConjuncts(pred, r.schema(), r.schema(), "L", "R",
                                   &keys, &residual)
                  .ok());
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0].left_index, 1u);
  EXPECT_EQ(keys[0].right_index, 1u);
  ASSERT_NE(residual, nullptr);
  EXPECT_EQ(residual->ToString(), "(L.VT overlaps R.VT)");
}

TEST(QueryEngineTest, OngoingEqualityIsNotAHashKey) {
  // Equality on ongoing attributes is time-dependent and must stay in
  // the residual.
  OngoingRelation r = MakeRelation(6, 5);
  ExprPtr pred = Eq(Col("L.VT"), Col("R.VT"));
  std::vector<EquiKey> keys;
  ExprPtr residual;
  ASSERT_TRUE(ExtractEquiConjuncts(pred, r.schema(), r.schema(), "L", "R",
                                   &keys, &residual)
                  .ok());
  EXPECT_TRUE(keys.empty());
  EXPECT_NE(residual, nullptr);
}

TEST(QueryEngineTest, CliffordModeMatchesInstantiatedOngoing) {
  OngoingRelation r = MakeRelation(7, 30);
  OngoingRelation s = MakeRelation(8, 20);
  PlanPtr plan =
      Join(Filter(Scan(&r, "R"), Lt(Col("K"), Lit(int64_t{7}))),
           Scan(&s, "S"),
           And(Eq(Col("L.K"), Col("R.K")),
               OverlapsExpr(Col("L.VT"), Col("R.VT"))),
           "L", "R");
  auto ongoing = Execute(plan);
  ASSERT_TRUE(ongoing.ok());
  for (TimePoint rt : {TimePoint{-5}, TimePoint{25}, TimePoint{75},
                       TimePoint{150}}) {
    auto clifford = ExecuteAtReferenceTime(plan, rt);
    ASSERT_TRUE(clifford.ok());
    EXPECT_TRUE(InstantiatedRelationsEqual(InstantiateRelation(*ongoing, rt),
                                           *clifford))
        << "rt=" << rt;
  }
}

TEST(QueryEngineTest, OptimizerPushesFilterBelowJoin) {
  OngoingRelation r = MakeRelation(9, 10);
  OngoingRelation s = MakeRelation(10, 10);
  // Filter on L.K only references the left side.
  PlanPtr plan = Filter(
      Join(Scan(&r, "R"), Scan(&s, "S"), Eq(Col("L.K"), Col("R.K")), "L",
           "R"),
      Lt(Col("L.K"), Lit(int64_t{5})));
  auto optimized = PushDownFilters(plan);
  ASSERT_TRUE(optimized.ok());
  // The root is now the join; the filter moved below.
  EXPECT_EQ((*optimized)->kind(), PlanKind::kJoin);
  const auto* join = static_cast<const JoinNode*>(optimized->get());
  EXPECT_EQ(join->left()->kind(), PlanKind::kFilter);
  // Results agree.
  auto a = Execute(plan);
  auto b = Execute(*optimized);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->size(), b->size());
}

TEST(QueryEngineTest, OptimizerChoosesHashJoinForEquiPredicates) {
  OngoingRelation r = MakeRelation(11, 5);
  OngoingRelation s = MakeRelation(12, 5);
  PlanPtr equi = Join(Scan(&r, "R"), Scan(&s, "S"),
                      Eq(Col("L.K"), Col("R.K")), "L", "R");
  auto chosen = ChooseJoinAlgorithms(equi);
  ASSERT_TRUE(chosen.ok());
  EXPECT_EQ(static_cast<const JoinNode*>(chosen->get())->algorithm(),
            JoinAlgorithm::kHash);
  PlanPtr theta = Join(Scan(&r, "R"), Scan(&s, "S"),
                       OverlapsExpr(Col("L.VT"), Col("R.VT")), "L", "R");
  auto chosen2 = ChooseJoinAlgorithms(theta);
  ASSERT_TRUE(chosen2.ok());
  EXPECT_EQ(static_cast<const JoinNode*>(chosen2->get())->algorithm(),
            JoinAlgorithm::kNestedLoop);
}

TEST(QueryEngineTest, OutputSchemaMatchesExecution) {
  OngoingRelation r = MakeRelation(13, 5);
  OngoingRelation s = MakeRelation(14, 5);
  PlanPtr plan = ProjectPlan(
      Join(Scan(&r, "R"), Scan(&s, "S"), Eq(Col("L.K"), Col("R.K")), "L",
           "R"),
      {"L.ID", "R.ID"});
  auto schema = OutputSchema(plan);
  auto result = Execute(plan);
  ASSERT_TRUE(schema.ok());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*schema, result->schema());
}

TEST(QueryEngineTest, MaterializedViewInstantiatesWithoutReevaluation) {
  OngoingRelation r = MakeRelation(15, 40);
  PlanPtr plan = Filter(Scan(&r, "R"),
                        OverlapsExpr(Col("VT"),
                                     Lit(OngoingInterval::Fixed(50, 80))));
  auto view = MaterializedView::Create(plan);
  ASSERT_TRUE(view.ok());
  for (TimePoint rt : {TimePoint{0}, TimePoint{60}, TimePoint{120}}) {
    OngoingRelation from_view = view->InstantiateAt(rt);
    auto direct = ExecuteAtReferenceTime(plan, rt);
    ASSERT_TRUE(direct.ok());
    EXPECT_TRUE(InstantiatedRelationsEqual(from_view, *direct)) << rt;
  }
}

}  // namespace
}  // namespace ongoingdb
