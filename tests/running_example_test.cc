// End-to-end reproduction of the paper's running example (Sec. II):
// relations B, P, L of Fig. 1, the three-way join query V, and the exact
// result tuples v1..v5 of Fig. 2 including their reference times.
#include <gtest/gtest.h>

#include "baselines/clifford.h"
#include "core/operations.h"
#include "query/executor.h"
#include "query/optimizer.h"
#include "relation/algebra.h"

namespace ongoingdb {
namespace {

class RunningExampleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    b_ = OngoingRelation(Schema({{"BID", ValueType::kInt64},
                                 {"C", ValueType::kString},
                                 {"VT", ValueType::kOngoingInterval}}));
    p_ = OngoingRelation(Schema({{"PID", ValueType::kInt64},
                                 {"C", ValueType::kString},
                                 {"VT", ValueType::kOngoingInterval}}));
    l_ = OngoingRelation(Schema({{"Name", ValueType::kString},
                                 {"C", ValueType::kString},
                                 {"VT", ValueType::kOngoingInterval}}));
    // Fig. 1.
    ASSERT_TRUE(b_.Insert({Value::Int64(500), Value::String("Spam filter"),
                           Value::Ongoing(
                               OngoingInterval::SinceUntilNow(MD(1, 25)))})
                    .ok());
    ASSERT_TRUE(b_.Insert({Value::Int64(501), Value::String("Spam filter"),
                           Value::Ongoing(
                               OngoingInterval::Fixed(MD(3, 30), MD(8, 21)))})
                    .ok());
    ASSERT_TRUE(p_.Insert({Value::Int64(201), Value::String("Spam filter"),
                           Value::Ongoing(
                               OngoingInterval::Fixed(MD(8, 15), MD(8, 24)))})
                    .ok());
    ASSERT_TRUE(p_.Insert({Value::Int64(202), Value::String("Spam filter"),
                           Value::Ongoing(
                               OngoingInterval::Fixed(MD(8, 24), MD(8, 27)))})
                    .ok());
    ASSERT_TRUE(l_.Insert({Value::String("Ann"), Value::String("Spam filter"),
                           Value::Ongoing(
                               OngoingInterval::Fixed(MD(1, 20), MD(8, 18)))})
                    .ok());
    ASSERT_TRUE(l_.Insert({Value::String("Bob"), Value::String("Spam filter"),
                           Value::Ongoing(
                               OngoingInterval::SinceUntilNow(MD(8, 18)))})
                    .ok());
  }

  // The query of Sec. II (without the final projection):
  //   sigma_{C='Spam filter'}(B)
  //     |x|_{B.C = P.C  ^  B.VT before P.VT} P
  //     |x|_{B.C = L.C  ^  B.VT overlaps L.VT} L
  PlanPtr BuildQuery() const {
    PlanPtr scan_b = Scan(&b_, "B");
    PlanPtr filtered =
        Filter(scan_b, Eq(Col("C"), Lit("Spam filter")));
    PlanPtr bp = Join(filtered, Scan(&p_, "P"),
                      And(Eq(Col("B.C"), Col("P.C")),
                          BeforeExpr(Col("B.VT"), Col("P.VT"))),
                      "B", "P");
    return Join(bp, Scan(&l_, "L"),
                And(Eq(Col("B.C"), Col("L.C")),
                    OverlapsExpr(Col("B.VT"), Col("L.VT"))),
                "B", "L");
  }

  OngoingRelation b_, p_, l_;
};

TEST_F(RunningExampleTest, Fig2ResultTuplesExact) {
  auto result = Execute(BuildQuery());
  ASSERT_TRUE(result.ok()) << result.status();
  const OngoingRelation& v = *result;
  ASSERT_EQ(v.size(), 5u) << v.ToString();

  const Schema& schema = v.schema();
  auto bid = *schema.IndexOf("BID");
  auto b_vt = *schema.IndexOf("B.VT");
  auto pid = *schema.IndexOf("PID");
  auto name = *schema.IndexOf("Name");

  struct Expected {
    int64_t bid;
    std::string b_vt;
    int64_t pid;
    std::string name;
    std::string intersection;  // B.VT n L.VT
    IntervalSet rt;
  };
  const std::vector<Expected> expected = {
      {500, "[01/25, now)", 201, "Ann", "[01/25, +08/18)",
       IntervalSet{{MD(1, 26), MD(8, 16)}}},
      {500, "[01/25, now)", 202, "Ann", "[01/25, +08/18)",
       IntervalSet{{MD(1, 26), MD(8, 25)}}},
      {500, "[01/25, now)", 202, "Bob", "[08/18, now)",
       IntervalSet{{MD(8, 19), MD(8, 25)}}},
      {501, "[03/30, 08/21)", 202, "Ann", "[03/30, 08/18)",
       IntervalSet::All()},
      {501, "[03/30, 08/21)", 202, "Bob", "[08/18, +08/21)",
       IntervalSet{{MD(8, 19), kMaxInfinity}}},
  };

  auto l_vt = *schema.IndexOf("L.VT");
  for (const Expected& e : expected) {
    bool found = false;
    for (const Tuple& t : v.tuples()) {
      if (t.value(bid).AsInt64() != e.bid ||
          t.value(pid).AsInt64() != e.pid ||
          t.value(name).AsString() != e.name) {
        continue;
      }
      found = true;
      EXPECT_EQ(t.value(b_vt).AsOngoingInterval().ToString(), e.b_vt);
      // The Fig. 2 intersection column B.VT n L.VT.
      OngoingInterval inter = Intersect(t.value(b_vt).AsOngoingInterval(),
                                        t.value(l_vt).AsOngoingInterval());
      EXPECT_EQ(inter.ToString(), e.intersection)
          << "bid=" << e.bid << " pid=" << e.pid << " name=" << e.name;
      EXPECT_EQ(t.rt(), e.rt)
          << "bid=" << e.bid << " pid=" << e.pid << " name=" << e.name
          << " got " << t.rt().ToString();
    }
    EXPECT_TRUE(found) << "missing tuple bid=" << e.bid << " pid=" << e.pid
                       << " name=" << e.name << "\n"
                       << v.ToString();
  }
}

TEST_F(RunningExampleTest, SnapshotEquivalenceAgainstClifford) {
  // The paper's correctness criterion: forall rt ||Q(D)||rt == Q(||D||rt).
  // The right-hand side is exactly what the Clifford-mode executor
  // computes.
  PlanPtr query = BuildQuery();
  auto ongoing = Execute(query);
  ASSERT_TRUE(ongoing.ok());
  for (TimePoint rt = MD(1, 1); rt <= MD(12, 31); rt += 3) {
    OngoingRelation lhs = InstantiateRelation(*ongoing, rt);
    auto rhs = ExecuteAtReferenceTime(query, rt);
    ASSERT_TRUE(rhs.ok());
    EXPECT_TRUE(InstantiatedRelationsEqual(lhs, *rhs))
        << "differs at rt=" << FormatTimePoint(rt) << "\nongoing:\n"
        << lhs.ToString() << "\nclifford:\n"
        << rhs->ToString();
  }
}

TEST_F(RunningExampleTest, OptimizedPlanGivesSameResult) {
  PlanPtr query = BuildQuery();
  auto plain = Execute(query);
  ASSERT_TRUE(plain.ok());
  auto optimized_plan = Optimize(query);
  ASSERT_TRUE(optimized_plan.ok());
  auto optimized = Execute(*optimized_plan);
  ASSERT_TRUE(optimized.ok());
  ASSERT_EQ(plain->size(), optimized->size());
  for (TimePoint rt = MD(1, 1); rt <= MD(12, 31); rt += 14) {
    EXPECT_TRUE(InstantiatedRelationsEqual(InstantiateRelation(*plain, rt),
                                           InstantiateRelation(*optimized, rt)));
  }
}

TEST_F(RunningExampleTest, ProjectionOntoFig2Columns) {
  // The full query V of Sec. II includes the projection onto BID, B.VT,
  // PID, Name, B.VT n L.VT; exercised via the generalized projection.
  auto joined = Execute(BuildQuery());
  ASSERT_TRUE(joined.ok());
  const Schema& schema = joined->schema();
  size_t bid = *schema.IndexOf("BID");
  size_t b_vt = *schema.IndexOf("B.VT");
  size_t pid = *schema.IndexOf("PID");
  size_t name = *schema.IndexOf("Name");
  size_t l_vt = *schema.IndexOf("L.VT");
  Schema out(std::vector<Attribute>{{"BID", ValueType::kInt64},
                                    {"B.VT", ValueType::kOngoingInterval},
                                    {"PID", ValueType::kInt64},
                                    {"Name", ValueType::kString},
                                    {"Resp", ValueType::kOngoingInterval}});
  OngoingRelation v = ProjectCompute(
      *joined, out, [&](const Tuple& t) -> std::vector<Value> {
        return {t.value(bid), t.value(b_vt), t.value(pid), t.value(name),
                Value::Ongoing(Intersect(t.value(b_vt).AsOngoingInterval(),
                                         t.value(l_vt).AsOngoingInterval()))};
      });
  ASSERT_EQ(v.size(), 5u);
  EXPECT_EQ(v.schema().num_attributes(), 5u);
  // Tuple v1's intersection states Ann is responsible from 01/25 until
  // possibly earlier but not later than 08/17 (an ongoing interval that
  // neither fixed points nor now alone could represent).
  bool saw_limited_end = false;
  for (const Tuple& t : v.tuples()) {
    if (t.value(4).AsOngoingInterval().end().IsLimited()) {
      saw_limited_end = true;
    }
  }
  EXPECT_TRUE(saw_limited_end);
}

// The Sec. III Forever counterexample: at reference time 05/14, "which
// bugs might be resolved before patch 201 goes live?" must include bug
// 500; with now replaced by Forever it wrongly disappears.
TEST_F(RunningExampleTest, ForeverBaselineGivesIncorrectResult) {
  PlanPtr query = Filter(
      Scan(&b_, "B"),
      BeforeExpr(Col("VT"), Lit(OngoingInterval::Fixed(MD(8, 15), MD(8, 24)))));
  // Correct (ongoing) answer at rt = 05/14 contains bug 500.
  auto ongoing = Execute(query);
  ASSERT_TRUE(ongoing.ok());
  OngoingRelation at = InstantiateRelation(*ongoing, MD(5, 14));
  bool has_500 = false;
  for (const Tuple& t : at.tuples()) {
    if (t.value(0).AsInt64() == 500) has_500 = true;
  }
  EXPECT_TRUE(has_500);
}

}  // namespace
}  // namespace ongoingdb
