// Tests of the DURATION(interval) <op> n predicate: the paper's
// future-work duration function wired into the expression and SQL
// layers.
#include <gtest/gtest.h>

#include "expr/expr.h"
#include "sql/statement.h"

namespace ongoingdb {
namespace {

Schema BugSchema() {
  return Schema({{"BID", ValueType::kInt64},
                 {"VT", ValueType::kOngoingInterval}});
}

TEST(DurationPredicateTest, ExprOngoingSemantics) {
  // Bug open since day 100: its duration exceeds 30 days from rt = 131.
  Tuple t({Value::Int64(1),
           Value::Ongoing(OngoingInterval::SinceUntilNow(100))});
  Schema schema = BugSchema();
  auto b = DurationCompare(CompareOp::kGt, Col("VT"), 30)
               ->EvalPredicate(schema, t);
  ASSERT_TRUE(b.ok()) << b.status();
  EXPECT_FALSE(b->Instantiate(120));  // 20 days open
  EXPECT_FALSE(b->Instantiate(130));  // exactly 30
  EXPECT_TRUE(b->Instantiate(131));   // 31 days open
  EXPECT_EQ(b->st(), (IntervalSet{{131, kMaxInfinity}}));
}

TEST(DurationPredicateTest, SnapshotEquivalenceSweep) {
  Schema schema = BugSchema();
  for (TimePoint a = -3; a <= 3; ++a) {
    for (TimePoint b = a; b <= 4; ++b) {
      for (TimePoint c = -3; c <= 4; ++c) {
        for (TimePoint d = c; d <= 5; ++d) {
          OngoingInterval iv(OngoingTimePoint(a, b), OngoingTimePoint(c, d));
          Tuple t({Value::Int64(0), Value::Ongoing(iv)});
          for (int64_t bound : {0, 2, 5}) {
            auto pred = DurationCompare(CompareOp::kLt, Col("VT"), bound)
                            ->EvalPredicate(schema, t);
            ASSERT_TRUE(pred.ok());
            for (TimePoint rt = -6; rt <= 8; ++rt) {
              FixedInterval f = iv.Instantiate(rt);
              int64_t duration = f.empty() ? 0 : f.end - f.start;
              EXPECT_EQ(pred->Instantiate(rt), duration < bound)
                  << iv.ToString() << " bound=" << bound << " rt=" << rt;
            }
          }
        }
      }
    }
  }
}

TEST(DurationPredicateTest, FixedEvaluation) {
  Schema schema({{"VT", ValueType::kFixedInterval}});
  Tuple t({Value::Interval({10, 25})});
  auto ge = DurationCompare(CompareOp::kGe, Col("VT"), 15)
                ->EvalPredicateFixed(schema, t);
  ASSERT_TRUE(ge.ok());
  EXPECT_TRUE(*ge);
  auto gt = DurationCompare(CompareOp::kGt, Col("VT"), 15)
                ->EvalPredicateFixed(schema, t);
  ASSERT_TRUE(gt.ok());
  EXPECT_FALSE(*gt);
}

TEST(DurationPredicateTest, SqlDurationKeyword) {
  sql::Catalog catalog;
  ASSERT_TRUE(
      sql::RunStatement("CREATE TABLE Bugs (BID INT, VT PERIOD)", &catalog)
          .ok());
  ASSERT_TRUE(sql::RunStatement(
                  "INSERT INTO Bugs VALUES (500, PERIOD ['01/25', NOW))",
                  &catalog)
                  .ok());
  ASSERT_TRUE(sql::RunStatement(
                  "INSERT INTO Bugs VALUES (501, PERIOD ['03/30', '04/05'))",
                  &catalog)
                  .ok());
  // Long-running bugs: open more than 60 days.
  auto result = sql::RunStatement(
      "SELECT BID FROM Bugs WHERE DURATION(VT) > 60", &catalog);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->relation->size(), 1u);
  const Tuple& t = result->relation->tuple(0);
  EXPECT_EQ(t.value(0).AsInt64(), 500);
  // The ongoing bug exceeds 60 days exactly 61 days after 01/25.
  EXPECT_EQ(t.rt(), (IntervalSet{{MD(1, 25) + 61, kMaxInfinity}}));
  // Fixed 6-day bug 501 never qualifies and is dropped.
}

TEST(DurationPredicateTest, SqlSyntaxErrors) {
  sql::Catalog catalog;
  ASSERT_TRUE(
      sql::RunStatement("CREATE TABLE T (VT PERIOD)", &catalog).ok());
  EXPECT_FALSE(
      sql::RunStatement("SELECT * FROM T WHERE DURATION VT > 3", &catalog)
          .ok());
  EXPECT_FALSE(
      sql::RunStatement("SELECT * FROM T WHERE DURATION(VT) >", &catalog)
          .ok());
  EXPECT_FALSE(sql::RunStatement(
                   "SELECT * FROM T WHERE DURATION(VT) OVERLAPS 3", &catalog)
                   .ok());
}

}  // namespace
}  // namespace ongoingdb
