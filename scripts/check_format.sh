#!/usr/bin/env bash
# Format gate, changed files only.
#
# Runs `clang-format --dry-run -Werror` over the C++ files that differ
# from the merge base with $1 (default: origin/main). Scoping to
# changed files keeps the gate incremental: new and touched code must
# match .clang-format, while untouched files are never mass-reformatted
# (see the note in .clang-format).
#
# Exits 0 when clean, when there is nothing to check, or when the
# environment cannot run the check (no clang-format, shallow clone with
# no merge base) — the gate only ever fails on real formatting drift.
set -euo pipefail

base_ref="${1:-origin/main}"

if ! command -v clang-format >/dev/null 2>&1; then
  echo "check_format: clang-format not found; skipping"
  exit 0
fi

if ! merge_base=$(git merge-base HEAD "$base_ref" 2>/dev/null); then
  echo "check_format: no merge base with ${base_ref}; skipping"
  exit 0
fi

mapfile -t files < <(git diff --name-only --diff-filter=ACMR "$merge_base" \
  -- '*.cc' '*.h' '*.cpp' | while read -r f; do
    [ -f "$f" ] && echo "$f"
  done)

if [ "${#files[@]}" -eq 0 ]; then
  echo "check_format: no C++ files changed since ${merge_base}"
  exit 0
fi

echo "check_format: checking ${#files[@]} changed file(s)"
clang-format --dry-run -Werror "${files[@]}"
echo "check_format: OK"
