#!/usr/bin/env python3
"""Compare freshly emitted bench JSON against a committed baseline.

Usage:
    check_bench_regression.py --baseline BENCH_PR8_smoke.json \
        bench_smoke_joins.json [bench_smoke_index.json ...]

The baseline is either a combined document ({"baseline": ..., "suites":
[...]}) like the committed BENCH_PR*.json files, or a single suite as
written by BenchJsonWriter. Each NEW file is a single-suite document; it
is matched to the baseline suite with the same "suite" name, and records
are matched by benchmark name. Suites or records present on only one
side are reported but never fail the check — benches come and go across
PRs; the gate only judges the records both sides measured.

Pass/fail: the check fails when the MEDIAN ns_per_op ratio (new/old)
over the common records of any suite exceeds --threshold (default 2.0).

Noise threshold rationale: shared CI runners routinely wobble
individual records by 20-50%, and a cold file cache can double one
measurement; the median over a suite's common records is robust to a
few outliers, and a 2x median shift is far outside runner noise — it
means the suite as a whole got slower. The per-record ratios are
printed so genuine single-bench regressions are still visible in the
log even when they do not trip the gate.

Scale guard: a suite pair recorded at different ONGOINGDB_BENCH_SCALE
values is not comparable; mismatched scales fail the check outright.

Robustness: a NEW file that is missing, unreadable, or malformed is
reported as [skip] and never fails the check — a bench binary that
crashed before WriteFromEnv(), or a CI step that never produced the
smoke file, is a problem for the bench job itself, not a perf
regression. Records without a usable ns_per_op (absent, non-numeric,
zero/negative, or non-finite on either side) are likewise skipped
per-record. Only a missing/malformed BASELINE is a hard usage error:
the committed file is under version control, so breakage there is
always a repo bug.

Exit codes: 0 ok, 1 regression or scale mismatch, 2 usage/format error.
"""

import argparse
import json
import math
import statistics
import sys


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"error: cannot load {path}: {e}", file=sys.stderr)
        sys.exit(2)


def ns_per_op(record):
    """The record's ns_per_op as a positive finite float, else None."""
    if not isinstance(record, dict) or "name" not in record:
        return None
    value = record.get("ns_per_op")
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        return None
    value = float(value)
    if not math.isfinite(value) or value <= 0:
        return None
    return value


def usable_records(doc):
    """{name: ns_per_op} over the doc's well-formed benchmark records."""
    out = {}
    for record in doc.get("benchmarks", []):
        value = ns_per_op(record)
        if value is not None:
            out[record["name"]] = value
    return out


def baseline_suites(doc, path):
    if "suites" in doc:
        return {s["suite"]: s for s in doc["suites"]}
    if "suite" in doc:
        return {doc["suite"]: doc}
    print(f"error: {path} has neither 'suites' nor 'suite'", file=sys.stderr)
    sys.exit(2)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", required=True,
                    help="committed baseline JSON (combined or single-suite)")
    ap.add_argument("--threshold", type=float, default=2.0,
                    help="max allowed median ns_per_op ratio (default 2.0)")
    ap.add_argument("new", nargs="+",
                    help="freshly emitted single-suite JSON files")
    args = ap.parse_args()

    base = baseline_suites(load(args.baseline), args.baseline)
    failed = False

    for path in args.new:
        try:
            with open(path) as f:
                doc = json.load(f)
        except (OSError, ValueError) as e:
            print(f"[skip] {path}: cannot load new results ({e}); "
                  "the bench run that should have written it needs a look")
            continue
        if not isinstance(doc, dict) or not isinstance(doc.get("suite"), str):
            print(f"[skip] {path}: not a single-suite bench document "
                  "(no 'suite' field)")
            continue
        name = doc["suite"]
        ref = base.get(name)
        if ref is None:
            print(f"[skip] suite '{name}' ({path}): not in baseline")
            continue
        if doc.get("scale") != ref.get("scale"):
            print(f"[FAIL] suite '{name}': scale mismatch "
                  f"(new {doc.get('scale')} vs baseline {ref.get('scale')})")
            failed = True
            continue

        old = usable_records(ref)
        new = usable_records(doc)
        common = sorted(set(old) & set(new))
        if not common:
            print(f"[skip] suite '{name}': no common usable records")
            continue

        ratios = []
        for bench in common:
            r = new[bench] / old[bench]
            ratios.append(r)
            print(f"  {name}/{bench}: {old[bench]:.3g} -> {new[bench]:.3g} "
                  f"ns/op  (x{r:.2f})")
        only_old = sorted(set(old) - set(new))
        only_new = sorted(set(new) - set(old))
        if only_old:
            print(f"  (baseline-only, ignored: {', '.join(only_old)})")
        if only_new:
            print(f"  (new-only, ignored: {', '.join(only_new)})")
        if not ratios:
            print(f"[skip] suite '{name}': no usable records")
            continue

        med = statistics.median(ratios)
        verdict = "FAIL" if med > args.threshold else "ok"
        print(f"[{verdict}] suite '{name}': median ratio x{med:.2f} over "
              f"{len(ratios)} common records (threshold x{args.threshold})")
        if med > args.threshold:
            failed = True

    sys.exit(1 if failed else 0)


if __name__ == "__main__":
    main()
