#!/usr/bin/env python3
"""Project-invariant linter for ongoingdb.

Checks invariants that the compilers cannot express but the codebase
relies on (see docs/DESIGN.md, "Static analysis"):

  1. failpoint-table   Every `Failpoint::GetOrCreate("<name>")` site in
                       src/ is documented in the failpoint table in
                       docs/DESIGN.md. Failpoints are part of the test
                       surface (ONGOINGDB_FAILPOINTS env specs target
                       them by name), so an undocumented site is
                       effectively an unlisted API.
  2. next-lifecycle    Every PhysicalOperator::Next implementation calls
                       CheckLifecycle (directly, or by delegating to a
                       NextBatch method of the same class that does).
                       This is the cancellation/deadline/failpoint
                       contract: a Next that skips it makes the operator
                       unkillable.
  3. raw-new           No raw owning `new`/`delete` in src/. The
                       codebase is unique_ptr/shared_ptr throughout;
                       allowlisted exceptions are the failpoint registry
                       (intentionally leaked singletons) and the
                       counting-allocator operator new/delete
                       replacements. Placement new and `::operator
                       new/delete` (manual-buffer idiom, inline_vector)
                       are not flagged.
  4. bench-json        Every bench suite in bench/*.cc registers its
                       measurements with BenchJsonWriter so the
                       check_bench_regression.py perf gate sees them.
                       Shape-only reports (no timed operations) may opt
                       out with an explicit allow comment.

A finding can be suppressed with an inline comment on the offending
line, the line above it, or (for next-lifecycle) inside the function
body:

    // lint:allow <rule>: <justification>

Exit status: 0 when clean, 1 when any finding, 2 on usage errors.
"""

import argparse
import re
import sys
from pathlib import Path

ALLOW_RE = re.compile(r"lint:allow\s+([a-z-]+)\s*:")

# Files in which rule 3 does not apply at all (see rule description).
RAW_NEW_ALLOWLIST = {
    "src/util/failpoint.cc",      # registry leaks Failpoint singletons on purpose
    "src/util/alloc_counter.cc",  # global operator new/delete replacements
}


def strip_code(text, keep_strings):
    """Blanks out comments (and optionally string/char literals) while
    preserving the character count, so offsets and line numbers survive."""
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = i
            while j < n and text[j] != "\n":
                out[j] = " "
                j += 1
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            for k in range(i, j):
                if out[k] != "\n":
                    out[k] = " "
            i = j
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            if not keep_strings:
                for k in range(i, j):
                    if out[k] != "\n":
                        out[k] = " "
            i = j
        else:
            i += 1
    return "".join(out)


def line_of(text, offset):
    return text.count("\n", 0, offset) + 1


def allowed(raw_text, offset, rule):
    """True if the line at `offset` or the line above carries
    `lint:allow <rule>:`."""
    line_start = raw_text.rfind("\n", 0, offset) + 1
    line_end = raw_text.find("\n", offset)
    line_end = len(raw_text) if line_end < 0 else line_end
    prev_start = raw_text.rfind("\n", 0, max(line_start - 1, 0)) + 1
    window = raw_text[prev_start:line_end]
    m = ALLOW_RE.search(window)
    return m is not None and m.group(1) == rule


def match_braces(text, open_idx):
    """Given the offset of a '{', returns the offset one past its
    matching '}' (or len(text) if unbalanced)."""
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


def class_spans(clean):
    """[(start, end, name)] for every class/struct definition."""
    spans = []
    for m in re.finditer(r"\b(?:class|struct)\s+(\w+)[^;{=()]*\{", clean):
        open_idx = m.end() - 1
        spans.append((m.start(), match_braces(clean, open_idx), m.group(1)))
    return spans


def iter_source(root, subdir, suffixes=(".cc", ".h")):
    base = root / subdir
    if not base.is_dir():
        return []
    return sorted(p for p in base.rglob("*") if p.suffix in suffixes)


# --------------------------------------------------------------------------
# Rule 1: failpoint-table
# --------------------------------------------------------------------------

GET_OR_CREATE_RE = re.compile(r'Failpoint::GetOrCreate\(\s*"([^"]+)"\s*\)')


def check_failpoint_table(root, findings):
    design = root / "docs" / "DESIGN.md"
    documented = set()
    if design.is_file():
        # Failpoint table rows look like: | `exec.open` | ... |
        documented = set(
            re.findall(r"^\|\s*`([^`]+)`", design.read_text(), re.MULTILINE)
        )
    for path in iter_source(root, "src"):
        raw = path.read_text()
        clean = strip_code(raw, keep_strings=True)
        for m in GET_OR_CREATE_RE.finditer(clean):
            name = m.group(1)
            if name in documented or allowed(raw, m.start(), "failpoint-table"):
                continue
            findings.append(
                (path, line_of(raw, m.start()), "failpoint-table",
                 f'failpoint site "{name}" is not documented in the '
                 "failpoint table in docs/DESIGN.md"))


# --------------------------------------------------------------------------
# Rule 2: next-lifecycle
# --------------------------------------------------------------------------

NEXT_RE = re.compile(
    r"Status\s+Next\s*\(\s*TupleBatch\s*\*\s*\w+\s*\)\s*(?:override\s*)?\{")
NEXT_BATCH_RE = re.compile(
    r"Status\s+NextBatch\s*\(\s*TupleBatch\s*\*\s*\w+\s*\)\s*\{")


def check_next_lifecycle(root, findings):
    for path in iter_source(root, "src", suffixes=(".cc",)):
        raw = path.read_text()
        clean = strip_code(raw, keep_strings=False)
        spans = class_spans(clean)
        for m in NEXT_RE.finditer(clean):
            open_idx = m.end() - 1
            body = clean[open_idx:match_braces(clean, open_idx)]
            raw_body = raw[m.start():match_braces(clean, open_idx)]
            if "CheckLifecycle" in body:
                continue
            if ALLOW_RE.search(raw_body) and \
                    "lint:allow next-lifecycle" in raw_body:
                continue
            if re.search(r"\bNextBatch\s*\(", body) and _delegate_checks(
                    clean, spans, m.start()):
                continue
            findings.append(
                (path, line_of(raw, m.start()), "next-lifecycle",
                 "PhysicalOperator::Next implementation never calls "
                 "CheckLifecycle (directly or via a NextBatch that does)"))


def _delegate_checks(clean, spans, next_offset):
    """True if the class enclosing the Next at `next_offset` has a
    NextBatch whose body calls CheckLifecycle."""
    enclosing = [s for s in spans if s[0] <= next_offset < s[1]]
    if not enclosing:
        return False
    start, end, _ = min(enclosing, key=lambda s: s[1] - s[0])
    for nb in NEXT_BATCH_RE.finditer(clean, start, end):
        open_idx = nb.end() - 1
        if "CheckLifecycle" in clean[open_idx:match_braces(clean, open_idx)]:
            return True
    return False


# --------------------------------------------------------------------------
# Rule 3: raw-new
# --------------------------------------------------------------------------

# An owning allocation: `new Type`, not `operator new`, not placement
# `new (addr) Type`, not `new (std::nothrow)`.
RAW_NEW_RE = re.compile(r"(?<![:\w])new\s+[\w:]")
# An owning deallocation: `delete expr` / `delete[] expr`, not
# `= delete` (deleted functions) and not `operator delete`.
RAW_DELETE_RE = re.compile(r"(?<![:\w])delete\b\s*(?:\[\s*\]\s*)?[\w:(*]")


def check_raw_new(root, findings):
    for path in iter_source(root, "src"):
        rel = path.relative_to(root).as_posix()
        if rel in RAW_NEW_ALLOWLIST:
            continue
        raw = path.read_text()
        clean = strip_code(raw, keep_strings=False)
        # Preprocessor lines (`#include <new>`) are not expressions.
        clean = re.sub(r"^\s*#.*$", lambda m: " " * len(m.group(0)), clean,
                       flags=re.MULTILINE)
        for regex, what in ((RAW_NEW_RE, "new"), (RAW_DELETE_RE, "delete")):
            for m in regex.finditer(clean):
                before = clean[max(0, m.start() - 64):m.start()]
                if re.search(r"operator\s*$", before):
                    continue
                if what == "delete" and re.search(r"=\s*$", before):
                    continue
                if allowed(raw, m.start(), "raw-new"):
                    continue
                findings.append(
                    (path, line_of(raw, m.start()), "raw-new",
                     f"raw `{what}` in src/ — use unique_ptr/shared_ptr, "
                     "or add to the allowlist with a justification"))


# --------------------------------------------------------------------------
# Rule 4: bench-json
# --------------------------------------------------------------------------


def check_bench_json(root, findings):
    base = root / "bench"
    if not base.is_dir():
        return
    for path in sorted(base.glob("*.cc")):
        if path.name.startswith("bench_common"):
            continue
        raw = path.read_text()
        if "BenchJsonWriter" in raw:
            continue
        m = ALLOW_RE.search(raw)
        if m and m.group(1) == "bench-json":
            continue
        findings.append(
            (path, 1, "bench-json",
             "bench suite never registers with BenchJsonWriter, so the "
             "perf regression gate cannot see its measurements"))


# --------------------------------------------------------------------------


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", required=True,
                        help="repository root to lint")
    parser.add_argument("--rule", action="append", default=None,
                        choices=["failpoint-table", "next-lifecycle",
                                 "raw-new", "bench-json"],
                        help="run only the named rule(s); default: all")
    args = parser.parse_args()

    root = Path(args.root)
    if not root.is_dir():
        print(f"lint_invariants: no such directory: {root}", file=sys.stderr)
        return 2

    rules = {
        "failpoint-table": check_failpoint_table,
        "next-lifecycle": check_next_lifecycle,
        "raw-new": check_raw_new,
        "bench-json": check_bench_json,
    }
    selected = args.rule or list(rules)

    findings = []
    for name in selected:
        rules[name](root, findings)

    for path, line, rule, message in findings:
        rel = path.relative_to(root).as_posix()
        print(f"{rel}:{line}: [{rule}] {message}")
    if findings:
        print(f"lint_invariants: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print(f"lint_invariants: OK ({', '.join(selected)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
